// Microbenchmarks of the substrate primitives (google-benchmark): codec
// round-trips, envelope parsing, the codec+fanout copy comparison against
// the seed's copy-per-recipient wire path, simulator event throughput, and
// histogram operations. These have no counterpart figure in the paper;
// they document the cost floor of the simulation substrate.
//
// Besides the usual benchmark table, the binary writes BENCH_micro.json
// (override the path with BENCH_MICRO_JSON) with the fan-out byte-copy
// accounting, so the perf trajectory of the wire path is machine-readable
// across PRs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "codec/wire.hpp"
#include "harness/cluster.hpp"
#include "harness/live_cluster.hpp"
#include "harness/runtime.hpp"
#include "common/process.hpp"
#include "common/rng.hpp"
#include "common/topology.hpp"
#include "multicast/message.hpp"
#include "net/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/stage.hpp"
#include "sim/network.hpp"
#include "sim/world.hpp"
#include "stats/histogram.hpp"
#include "wal/log.hpp"
#include "wbcast/messages.hpp"

namespace wbam {
namespace {

void BM_CodecVarint(benchmark::State& state) {
    Rng rng(1);
    std::vector<std::uint64_t> values(1024);
    for (auto& v : values) v = rng.next_u64() >> rng.next_below(64);
    for (auto _ : state) {
        codec::Writer w;
        for (const auto v : values) w.varint(v);
        codec::Reader r(w.buffer());
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < values.size(); ++i) sum += r.varint();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_CodecVarint);

void BM_AppMessageRoundTrip(benchmark::State& state) {
    const AppMessage m = make_app_message(
        make_msg_id(42, 7), {0, 3, 5},
        Bytes(static_cast<std::size_t>(state.range(0)), 0xab));
    for (auto _ : state) {
        const Bytes wire = codec::encode_to_bytes(m);
        const AppMessage out = codec::decode_from_bytes<AppMessage>(wire);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AppMessageRoundTrip)->Arg(20)->Arg(256)->Arg(4096);

void BM_AcceptMsgRoundTrip(benchmark::State& state) {
    const wbcast::AcceptMsg a{
        make_app_message(make_msg_id(1, 1), {0, 1, 2}, Bytes(20, 0x77)), 1,
        Ballot{3, 4}, Timestamp{99, 1}};
    for (auto _ : state) {
        const Buffer wire = codec::encode_envelope(
            codec::Module::proto,
            static_cast<std::uint8_t>(wbcast::MsgType::accept), a.msg.id, a);
        codec::EnvelopeView env(wire);
        const auto out = wbcast::AcceptMsg::decode(env.body);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AcceptMsgRoundTrip);

void BM_EnvelopePeek(benchmark::State& state) {
    const Buffer wire = codec::encode_envelope(
        codec::Module::proto, 2, make_msg_id(7, 9),
        wbcast::GcStatusMsg{Timestamp{5, 1}});
    for (auto _ : state) {
        codec::EnvelopeView env(wire);
        benchmark::DoNotOptimize(env.about);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnvelopePeek);

// --- codec + fan-out copy comparison ----------------------------------------
//
// The paper's Fig. 7/8 throughput ceiling is the leaders' serial encode +
// fan-out cost. A 3-group ACCEPT touches every member of every destination
// group (9 recipients here). The seed's wire path made one full payload
// copy per recipient (Context::send_many's default copied Bytes per
// destination); the shared-buffer substrate freezes one image and fans out
// refcounted slices. Both paths are measured through the same mock context
// and accounted with buffer_stats.

// Sink standing in for a runtime: retains slices like the real runtimes do.
class CollectContext final : public Context {
public:
    ProcessId self() const override { return 0; }
    TimePoint now() const override { return 0; }
    void send(ProcessId, BufferSlice bytes) override {
        inboxes.push_back(std::move(bytes));
    }
    TimerId set_timer(Duration) override { return invalid_timer; }
    void cancel_timer(TimerId) override {}
    Rng& rng() override { return rng_; }

    std::vector<BufferSlice> inboxes;

private:
    Rng rng_{1};
};

wbcast::AcceptMsg fanout_accept(std::size_t payload_size) {
    return wbcast::AcceptMsg{
        make_app_message(make_msg_id(1, 1), {0, 1, 2},
                         Bytes(payload_size, 0xab)),
        0, Ballot{1, 0}, Timestamp{7, 0}};
}

constexpr int fanout_recipients = 9;  // 3 destination groups x 3 members

// Seed-equivalent path: encode to Bytes, then duplicate the wire image for
// every recipient (what the pre-refactor Context::send_many default did).
void fanout_seed_style(const wbcast::AcceptMsg& a, CollectContext& ctx) {
    codec::Writer w;
    w.u8(static_cast<std::uint8_t>(codec::Module::proto));
    w.u8(static_cast<std::uint8_t>(wbcast::MsgType::accept));
    w.varint(a.msg.id);
    a.encode(w);
    const Bytes wire = std::move(w).take();
    for (int p = 0; p < fanout_recipients; ++p)
        ctx.send(p, wire);  // lvalue Bytes -> counted per-recipient copy
}

// Shared-buffer path: freeze one image, fan out slices.
void fanout_shared(const wbcast::AcceptMsg& a, CollectContext& ctx) {
    const Buffer wire = codec::encode_envelope(
        codec::Module::proto, static_cast<std::uint8_t>(wbcast::MsgType::accept),
        a.msg.id, a);
    std::vector<ProcessId> recipients(fanout_recipients);
    for (int p = 0; p < fanout_recipients; ++p) recipients[p] = p;
    ctx.send_many(recipients, wire);
}

void BM_AcceptFanoutSeedStyle(benchmark::State& state) {
    const auto a = fanout_accept(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        CollectContext ctx;
        fanout_seed_style(a, ctx);
        benchmark::DoNotOptimize(ctx.inboxes);
    }
    state.SetItemsProcessed(state.iterations() * fanout_recipients);
}
BENCHMARK(BM_AcceptFanoutSeedStyle)->Arg(20)->Arg(1024)->Arg(4096);

void BM_AcceptFanoutShared(benchmark::State& state) {
    const auto a = fanout_accept(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        CollectContext ctx;
        fanout_shared(a, ctx);
        benchmark::DoNotOptimize(ctx.inboxes);
    }
    state.SetItemsProcessed(state.iterations() * fanout_recipients);
}
BENCHMARK(BM_AcceptFanoutShared)->Arg(20)->Arg(1024)->Arg(4096);

// --- decode-side delivery comparison -----------------------------------------
//
// PR 1 removed the send-side copies; the decode side still copied once per
// recipient while AppMessage::payload was owned Bytes. With payload as a
// BufferSlice, every recipient's delivered payload is a zero-copy view of
// the one shared wire buffer. The owned-style path below re-enacts the old
// behaviour (detach the payload into owned bytes at decode) for the
// trajectory comparison in BENCH_micro.json.

// Decode an ACCEPT at every recipient and keep the delivered payload the
// way the seed did: as owned bytes (one copy per recipient).
std::vector<Bytes> deliver_owned_style(const std::vector<BufferSlice>& inboxes) {
    std::vector<Bytes> delivered;
    delivered.reserve(inboxes.size());
    for (const BufferSlice& wire : inboxes) {
        codec::EnvelopeView env(wire);
        const auto decoded = wbcast::AcceptMsg::decode(env.body);
        delivered.push_back(decoded.msg.payload.to_bytes());
    }
    return delivered;
}

// Slice delivery: the payload handed to the sink aliases the wire buffer.
std::vector<BufferSlice> deliver_slice_style(
    const std::vector<BufferSlice>& inboxes) {
    std::vector<BufferSlice> delivered;
    delivered.reserve(inboxes.size());
    for (const BufferSlice& wire : inboxes) {
        codec::EnvelopeView env(wire);
        const auto decoded = wbcast::AcceptMsg::decode(env.body);
        delivered.push_back(decoded.msg.payload);
    }
    return delivered;
}

void BM_DeliverFanoutOwnedPayload(benchmark::State& state) {
    const auto a = fanout_accept(static_cast<std::size_t>(state.range(0)));
    CollectContext ctx;
    fanout_shared(a, ctx);
    for (auto _ : state) {
        auto delivered = deliver_owned_style(ctx.inboxes);
        benchmark::DoNotOptimize(delivered);
    }
    state.SetItemsProcessed(state.iterations() * fanout_recipients);
}
BENCHMARK(BM_DeliverFanoutOwnedPayload)->Arg(20)->Arg(1024)->Arg(4096)->Arg(65536);

void BM_DeliverFanoutSlicePayload(benchmark::State& state) {
    const auto a = fanout_accept(static_cast<std::size_t>(state.range(0)));
    CollectContext ctx;
    fanout_shared(a, ctx);
    for (auto _ : state) {
        auto delivered = deliver_slice_style(ctx.inboxes);
        benchmark::DoNotOptimize(delivered);
    }
    state.SetItemsProcessed(state.iterations() * fanout_recipients);
}
BENCHMARK(BM_DeliverFanoutSlicePayload)->Arg(20)->Arg(1024)->Arg(4096)->Arg(65536);

struct DeliveryCopyStats {
    std::size_t payload = 0;
    std::uint64_t owned_bytes_copied = 0;  // seed-style decode-side detach
    std::uint64_t slice_bytes_copied = 0;  // zero-copy views (expect 0)
    bool slices_share_wire = false;        // all recipients alias one buffer
};

DeliveryCopyStats measure_delivery_copies(std::size_t payload_size) {
    DeliveryCopyStats out;
    out.payload = payload_size;
    const auto a = fanout_accept(payload_size);
    CollectContext ctx;
    fanout_shared(a, ctx);

    std::uint64_t before = buffer_stats::bytes_copied();
    const auto owned = deliver_owned_style(ctx.inboxes);
    out.owned_bytes_copied = buffer_stats::bytes_copied() - before;

    before = buffer_stats::bytes_copied();
    const auto slices = deliver_slice_style(ctx.inboxes);
    out.slice_bytes_copied = buffer_stats::bytes_copied() - before;

    out.slices_share_wire = !slices.empty();
    for (const BufferSlice& s : slices)
        out.slices_share_wire &= same_storage(s, slices.front());
    benchmark::DoNotOptimize(owned);
    return out;
}

// One fan-out, decoded at every recipient: byte-copy accounting per path,
// reported in BENCH_micro.json.
struct FanoutCopyStats {
    std::size_t payload = 0;
    std::uint64_t wire_size = 0;
    std::uint64_t seed_bytes_copied = 0;
    std::uint64_t shared_bytes_copied = 0;
};

FanoutCopyStats measure_fanout_copies(std::size_t payload_size) {
    FanoutCopyStats out;
    out.payload = payload_size;
    const auto a = fanout_accept(payload_size);
    out.wire_size = codec::encode_envelope(
                        codec::Module::proto,
                        static_cast<std::uint8_t>(wbcast::MsgType::accept),
                        a.msg.id, a)
                        .size();

    auto run = [&](auto&& fanout) {
        CollectContext ctx;
        const std::uint64_t before = buffer_stats::bytes_copied();
        fanout(a, ctx);
        for (const BufferSlice& wire : ctx.inboxes) {
            codec::EnvelopeView env(wire);
            const auto decoded = wbcast::AcceptMsg::decode(env.body);
            benchmark::DoNotOptimize(decoded);
        }
        return buffer_stats::bytes_copied() - before;
    };
    out.seed_bytes_copied = run(fanout_seed_style);
    out.shared_bytes_copied = run(fanout_shared);
    return out;
}

// --- payload-size sweep -------------------------------------------------------
//
// ROADMAP item: with zero-copy delivery the Fig. 7/8 throughput ceiling —
// the leader's serial encode + fan-out + every recipient's decode — should
// be insensitive to payload size, because no stage copies payload bytes
// anymore. The sweep measures one full message round (encode once, 9
// recipients decode and keep the payload) at growing payload sizes on both
// delivery styles: bytes copied (deterministic, via buffer_stats) and
// wall-clock per message (illustrative). The owned-payload column re-enacts
// the seed's decode-side copy and grows linearly; the slice column stays
// flat at zero copies.

struct SweepPoint {
    std::size_t payload = 0;
    std::uint64_t wire_bytes = 0;
    std::uint64_t owned_bytes_copied = 0;
    std::uint64_t slice_bytes_copied = 0;
    double owned_ns_per_msg = 0;
    double slice_ns_per_msg = 0;
};

template <typename Fn>
double time_ns_per_call(Fn&& fn) {
    constexpr int iters = 400;
    fn();  // warm-up (first call faults in the fan-out buffers)
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const auto stop = std::chrono::steady_clock::now();
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                   .count()) /
           iters;
}

SweepPoint measure_sweep_point(std::size_t payload) {
    SweepPoint out;
    out.payload = payload;
    const auto a = fanout_accept(payload);
    CollectContext ctx;
    fanout_shared(a, ctx);
    out.wire_bytes = ctx.inboxes.empty() ? 0 : ctx.inboxes.front().size();

    std::uint64_t before = buffer_stats::bytes_copied();
    auto owned = deliver_owned_style(ctx.inboxes);
    out.owned_bytes_copied = buffer_stats::bytes_copied() - before;
    before = buffer_stats::bytes_copied();
    auto slices = deliver_slice_style(ctx.inboxes);
    out.slice_bytes_copied = buffer_stats::bytes_copied() - before;
    benchmark::DoNotOptimize(owned);
    benchmark::DoNotOptimize(slices);

    out.owned_ns_per_msg = time_ns_per_call([&] {
        auto d = deliver_owned_style(ctx.inboxes);
        benchmark::DoNotOptimize(d);
    });
    out.slice_ns_per_msg = time_ns_per_call([&] {
        auto d = deliver_slice_style(ctx.inboxes);
        benchmark::DoNotOptimize(d);
    });
    return out;
}

// --- transport saturation (sharded event loops) -------------------------------
//
// Raw messages/sec of the TCP transport across shard counts: P echo pairs
// over loopback, blasters in one NetWorld, echo sinks in another, each
// blaster keeping `window` round trips in flight. Pair affinity spreads
// the P channels across the event-loop shards, so the shard axis {1,2,4}
// measures how the transport scales with cores — the numbers land in
// BENCH_micro.json's "saturation" section (messages_per_sec and
// messages_per_sec_per_core, median of 3 runs), tracked non-gating in CI.

class EchoSink final : public Process {
public:
    void on_start(Context&) override {}
    void on_message(Context& ctx, ProcessId from,
                    const BufferSlice& bytes) override {
        ctx.send(from, bytes);
    }
    void on_timer(Context&, TimerId) override {}
};

class Blaster final : public Process {
public:
    Blaster(ProcessId peer, int msgs, int window, std::size_t payload,
            std::atomic<std::uint64_t>* completed)
        : peer_(peer), msgs_(msgs), window_(window),
          payload_(payload, 0x5a), completed_(completed) {}

    void on_start(Context& ctx) override {
        const int burst = std::min(window_, msgs_);
        for (int i = 0; i < burst; ++i) send_one(ctx);
    }
    void on_message(Context& ctx, ProcessId, const BufferSlice&) override {
        completed_->fetch_add(1, std::memory_order_relaxed);
        if (issued_ < msgs_) send_one(ctx);
    }
    void on_timer(Context&, TimerId) override {}

private:
    void send_one(Context& ctx) {
        ++issued_;
        ctx.send(peer_, payload_);
    }

    ProcessId peer_;
    int msgs_;
    int window_;
    Bytes payload_;
    std::atomic<std::uint64_t>* completed_;
    int issued_ = 0;
};

struct SaturationRun {
    double seconds = 0;
    std::uint64_t messages = 0;      // both directions count
    std::uint64_t writev_calls = 0;
    std::uint64_t frames_sent = 0;
    bool completed = false;
};

SaturationRun run_saturation(int shards, int pairs, int msgs_per_pair,
                             int window, std::size_t payload) {
    const int n = 2 * pairs;
    const Topology topo(1, 1, n - 1);
    net::NetConfig cfg;
    cfg.shards = shards;
    cfg.epoch = std::chrono::steady_clock::now();

    std::atomic<std::uint64_t> completed{0};
    // Even pids blast, odd pids echo; the two sides live in different
    // NetWorlds so every message crosses a real TCP connection.
    net::NetWorld blast_world(topo, 11, cfg);
    net::NetWorld echo_world(topo, 22, cfg);
    for (ProcessId p = 0; p < n; p += 2)
        blast_world.add_process(p,
                                std::make_unique<Blaster>(p + 1, msgs_per_pair,
                                                          window, payload,
                                                          &completed),
                                /*listen_port=*/0);
    for (ProcessId p = 1; p < n; p += 2)
        echo_world.add_process(p, std::make_unique<EchoSink>(),
                               /*listen_port=*/0);
    net::ClusterMap map;
    map.endpoints.resize(static_cast<std::size_t>(n));
    for (ProcessId p = 0; p < n; ++p)
        map.endpoints[static_cast<std::size_t>(p)] = net::Endpoint{
            "127.0.0.1",
            (p % 2 == 0 ? blast_world : echo_world).port_of(p)};
    blast_world.set_cluster(map);
    echo_world.set_cluster(map);

    net::transport_stats::reset();
    const std::uint64_t target =
        static_cast<std::uint64_t>(msgs_per_pair) *
        static_cast<std::uint64_t>(pairs);
    const auto start = std::chrono::steady_clock::now();
    const auto deadline = start + std::chrono::seconds(60);
    echo_world.start();
    blast_world.start();
    while (completed.load(std::memory_order_relaxed) < target &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    const auto stop = std::chrono::steady_clock::now();
    blast_world.shutdown();
    echo_world.shutdown();

    SaturationRun out;
    out.seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(stop - start)
            .count();
    out.completed = completed.load() >= target;
    out.messages = 2 * completed.load();  // each round trip = 2 messages
    out.writev_calls = net::transport_stats::writev_calls();
    out.frames_sent = net::transport_stats::frames_sent();
    return out;
}

struct SaturationPoint {
    int shards = 0;
    SaturationRun median;  // of 3 runs, by messages/sec
    double messages_per_sec = 0;
    double messages_per_sec_per_core = 0;
    double frames_per_writev = 0;
};

SaturationPoint measure_saturation_point(int shards) {
    const bool quick = std::getenv("WBAM_BENCH_QUICK") != nullptr;
    const int pairs = 8;
    const int msgs = quick ? 400 : 4000;
    const int window = 64;
    const std::size_t payload = 64;
    const int runs = quick ? 1 : 3;
    std::vector<SaturationRun> results;
    for (int r = 0; r < runs; ++r)
        results.push_back(run_saturation(shards, pairs, msgs, window, payload));
    std::sort(results.begin(), results.end(),
              [](const SaturationRun& a, const SaturationRun& b) {
                  const double ra = a.seconds > 0
                                        ? static_cast<double>(a.messages) /
                                              a.seconds
                                        : 0;
                  const double rb = b.seconds > 0
                                        ? static_cast<double>(b.messages) /
                                              b.seconds
                                        : 0;
                  return ra < rb;
              });
    SaturationPoint out;
    out.shards = shards;
    out.median = results[results.size() / 2];
    if (out.median.seconds > 0)
        out.messages_per_sec =
            static_cast<double>(out.median.messages) / out.median.seconds;
    out.messages_per_sec_per_core = out.messages_per_sec / shards;
    if (out.median.writev_calls > 0)
        out.frames_per_writev =
            static_cast<double>(out.median.frames_sent) /
            static_cast<double>(out.median.writev_calls);
    std::fprintf(stderr,
                 "saturation shards=%d: %.0f msgs/s (%.0f per core), "
                 "%.2f frames/writev%s\n",
                 shards, out.messages_per_sec, out.messages_per_sec_per_core,
                 out.frames_per_writev,
                 out.median.completed ? "" : " [TIMED OUT]");
    return out;
}

// --- WAL durability cost ------------------------------------------------------
//
// What each --wal-sync mode costs per appended record, measured on a fresh
// log file: `always` pays one fsync per record (the per-message-durability
// floor), `group` amortizes one fsync over a whole commit batch (the mode
// wbamd runs with — the batch boundary is the protocol's message-batch
// flush), `off` writes without syncing (crash durability = none, the
// write-path cost floor). Record shape models a protocol append: a small
// Writer-encoded meta part plus a 64-byte retained payload slice.

struct DurabilityPoint {
    wal::SyncMode mode = wal::SyncMode::off;
    int batch = 1;  // appends per commit()
    std::uint64_t appends = 0;
    double seconds = 0;
    double appends_per_sec = 0;
    double us_per_append = 0;
    std::uint64_t fsyncs = 0;
    std::uint64_t bytes_written = 0;
};

DurabilityPoint measure_durability(wal::SyncMode mode, int batch,
                                   std::uint64_t appends) {
    const char* tmp = std::getenv("TMPDIR");
    const std::string path = std::string(tmp != nullptr ? tmp : "/tmp") +
                             "/wbam_bench_wal_" + wal::to_string(mode) +
                             ".wal";
    std::remove(path.c_str());

    DurabilityPoint out;
    out.mode = mode;
    out.batch = batch;
    out.appends = appends;
    const Bytes payload_bytes(64, 0x5a);
    {
        wal::Log log(path, mode);
        if (!log.ok()) return out;
        const auto start = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < appends; ++i) {
            codec::Writer w;
            w.varint(i);  // meta: a record id, like a MsgId or Timestamp
            log.append(/*type=*/1, std::move(w).take(),
                       BufferSlice(Bytes(payload_bytes)));
            if (static_cast<int>(i % static_cast<std::uint64_t>(batch)) ==
                batch - 1)
                log.commit();
        }
        log.commit();
        const auto stop = std::chrono::steady_clock::now();
        out.seconds = std::chrono::duration_cast<
                          std::chrono::duration<double>>(stop - start)
                          .count();
        out.fsyncs = log.stats().fsyncs;
        out.bytes_written = log.stats().bytes_written;
    }
    std::remove(path.c_str());
    if (out.seconds > 0)
        out.appends_per_sec = static_cast<double>(appends) / out.seconds;
    out.us_per_append = out.seconds * 1e6 / static_cast<double>(appends);
    std::fprintf(stderr,
                 "durability %s (batch %d): %.0f appends/s, %.2f us/append, "
                 "%llu fsyncs\n",
                 wal::to_string(out.mode), out.batch, out.appends_per_sec,
                 out.us_per_append,
                 static_cast<unsigned long long>(out.fsyncs));
    return out;
}

void write_bench_json() {
    const char* path = std::getenv("BENCH_MICRO_JSON");
    if (path == nullptr) path = "BENCH_micro.json";
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"bench_micro\",\n");
    std::fprintf(f, "  \"fanout\": {\n");
    std::fprintf(f, "    \"scenario\": \"3-group ACCEPT fan-out, %d recipients, encode + deliver + decode\",\n",
                 fanout_recipients);
    std::fprintf(f, "    \"payload_sizes\": [\n");
    const std::size_t sizes[] = {20, 1024, 4096};
    // A fully zero-copy shared path divides by zero; the factor is emitted
    // as null then (docs/BENCHMARKS.md documents the schema).
    auto print_factor = [f](std::uint64_t num, std::uint64_t den) {
        if (den == 0)
            std::fprintf(f, "\"copy_reduction_factor\": null");
        else
            std::fprintf(f, "\"copy_reduction_factor\": %.2f",
                         static_cast<double>(num) / static_cast<double>(den));
    };
    bool first = true;
    for (const std::size_t payload : sizes) {
        const FanoutCopyStats s = measure_fanout_copies(payload);
        std::fprintf(f, "%s", first ? "" : ",\n");
        first = false;
        std::fprintf(f,
                     "      {\"payload_bytes\": %zu, \"wire_bytes\": %llu, "
                     "\"seed_bytes_copied\": %llu, "
                     "\"shared_bytes_copied\": %llu, ",
                     payload,
                     static_cast<unsigned long long>(s.wire_size),
                     static_cast<unsigned long long>(s.seed_bytes_copied),
                     static_cast<unsigned long long>(s.shared_bytes_copied));
        print_factor(s.seed_bytes_copied, s.shared_bytes_copied);
        std::fprintf(f, "}");
    }
    std::fprintf(f, "\n    ]\n  },\n");
    // Decode-side delivery: bytes copied to hand every recipient its
    // payload, owned-Bytes style (the pre-slice decode path, one copy per
    // recipient) vs BufferSlice views of the shared wire buffer.
    std::fprintf(f, "  \"delivery\": {\n");
    std::fprintf(f, "    \"scenario\": \"decode one shared ACCEPT fan-out at every recipient and keep the payload\",\n");
    std::fprintf(f, "    \"recipients\": %d,\n", fanout_recipients);
    std::fprintf(f, "    \"payload_sizes\": [\n");
    first = true;
    for (const std::size_t payload : sizes) {
        const DeliveryCopyStats s = measure_delivery_copies(payload);
        std::fprintf(f, "%s", first ? "" : ",\n");
        first = false;
        std::fprintf(f,
                     "      {\"payload_bytes\": %zu, "
                     "\"owned_decode_bytes_copied\": %llu, "
                     "\"slice_decode_bytes_copied\": %llu, "
                     "\"bytes_copied_per_recipient_owned\": %llu, "
                     "\"bytes_copied_per_recipient_slice\": %llu, "
                     "\"all_recipients_share_wire_buffer\": %s, ",
                     payload,
                     static_cast<unsigned long long>(s.owned_bytes_copied),
                     static_cast<unsigned long long>(s.slice_bytes_copied),
                     static_cast<unsigned long long>(s.owned_bytes_copied /
                                                     fanout_recipients),
                     static_cast<unsigned long long>(s.slice_bytes_copied /
                                                     fanout_recipients),
                     s.slices_share_wire ? "true" : "false");
        print_factor(s.owned_bytes_copied, s.slice_bytes_copied);
        std::fprintf(f, "}");
    }
    std::fprintf(f, "\n    ]\n  },\n");
    // Payload-size sweep: the throughput-ceiling work per message (encode
    // once + 9 recipients decode and keep the payload) across payload
    // sizes. slice_bytes_copied stays 0 at every size — the ceiling is
    // payload-size-insensitive with zero-copy delivery (docs/BENCHMARKS.md
    // has the interpretation; ns numbers are wall-clock, machine-noisy).
    std::fprintf(f, "  \"sweep\": {\n");
    std::fprintf(f, "    \"scenario\": \"full delivery round at growing payload sizes: encode one ACCEPT, fan out to %d recipients, decode + keep payload at each\",\n",
                 fanout_recipients);
    std::fprintf(f, "    \"recipients\": %d,\n", fanout_recipients);
    std::fprintf(f, "    \"payload_sizes\": [\n");
    const std::size_t sweep_sizes[] = {16, 256, 4096, 65536};
    first = true;
    for (const std::size_t payload : sweep_sizes) {
        const SweepPoint s = measure_sweep_point(payload);
        std::fprintf(f, "%s", first ? "" : ",\n");
        first = false;
        std::fprintf(f,
                     "      {\"payload_bytes\": %zu, \"wire_bytes\": %llu, "
                     "\"owned_decode_bytes_copied\": %llu, "
                     "\"slice_decode_bytes_copied\": %llu, "
                     "\"owned_ns_per_fanout\": %.0f, "
                     "\"slice_ns_per_fanout\": %.0f, ",
                     payload,
                     static_cast<unsigned long long>(s.wire_bytes),
                     static_cast<unsigned long long>(s.owned_bytes_copied),
                     static_cast<unsigned long long>(s.slice_bytes_copied),
                     s.owned_ns_per_msg, s.slice_ns_per_msg);
        print_factor(s.owned_bytes_copied, s.slice_bytes_copied);
        std::fprintf(f, "}");
    }
    std::fprintf(f, "\n    ]\n  },\n");
    // Transport saturation across event-loop shard counts. per_core divides
    // by the shard count, so flat per-core numbers across the axis mean the
    // sharded transport scales; speedup_4_over_1 is the CI headline (needs
    // >= 4 real cores to show > 1).
    std::fprintf(f, "  \"saturation\": {\n");
    std::fprintf(f,
                 "    \"scenario\": \"8 echo pairs over loopback TCP, 64-byte "
                 "payloads, 64 round trips in flight per pair; both directions "
                 "count as messages\",\n");
    std::fprintf(f, "    \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "    \"median_of\": %d,\n",
                 std::getenv("WBAM_BENCH_QUICK") != nullptr ? 1 : 3);
    std::fprintf(f, "    \"shard_axis\": [\n");
    const int shard_axis[] = {1, 2, 4};
    double rate_at_1 = 0, rate_at_4 = 0;
    bool first_shard = true;
    for (const int shards : shard_axis) {
        const SaturationPoint s = measure_saturation_point(shards);
        if (shards == 1) rate_at_1 = s.messages_per_sec;
        if (shards == 4) rate_at_4 = s.messages_per_sec;
        std::fprintf(f, "%s", first_shard ? "" : ",\n");
        first_shard = false;
        std::fprintf(f,
                     "      {\"shards\": %d, \"messages\": %llu, "
                     "\"seconds\": %.4f, \"messages_per_sec\": %.0f, "
                     "\"messages_per_sec_per_core\": %.0f, "
                     "\"frames_sent\": %llu, \"writev_calls\": %llu, "
                     "\"frames_per_writev\": %.2f, \"completed\": %s}",
                     s.shards,
                     static_cast<unsigned long long>(s.median.messages),
                     s.median.seconds, s.messages_per_sec,
                     s.messages_per_sec_per_core,
                     static_cast<unsigned long long>(s.median.frames_sent),
                     static_cast<unsigned long long>(s.median.writev_calls),
                     s.frames_per_writev,
                     s.median.completed ? "true" : "false");
    }
    std::fprintf(f, "\n    ],\n");
    if (rate_at_1 > 0)
        std::fprintf(f, "    \"speedup_4_over_1\": %.2f\n",
                     rate_at_4 / rate_at_1);
    else
        std::fprintf(f, "    \"speedup_4_over_1\": null\n");
    std::fprintf(f, "  },\n");
    // WAL durability: per-append cost of the three --wal-sync modes on a
    // fresh log. group_commit_speedup_over_always is the headline: how much
    // one-fsync-per-batch buys over one-fsync-per-record.
    std::fprintf(f, "  \"durability\": {\n");
    std::fprintf(f,
                 "    \"scenario\": \"append ~73-byte records (varint meta + "
                 "64-byte payload slice) to a fresh WAL; one fsync per record "
                 "(always), per 64-record batch (group), or never (off)\",\n");
    {
        const bool quick = std::getenv("WBAM_BENCH_QUICK") != nullptr;
        const std::uint64_t n_buffered = quick ? 4000 : 40000;
        const std::uint64_t n_synced = quick ? 200 : 2000;
        const DurabilityPoint points[] = {
            measure_durability(wal::SyncMode::off, 64, n_buffered),
            measure_durability(wal::SyncMode::group_commit, 64, n_buffered),
            measure_durability(wal::SyncMode::always, 1, n_synced),
        };
        std::fprintf(f, "    \"modes\": [\n");
        bool first_mode = true;
        for (const DurabilityPoint& p : points) {
            std::fprintf(f, "%s", first_mode ? "" : ",\n");
            first_mode = false;
            std::fprintf(
                f,
                "      {\"sync\": \"%s\", \"batch\": %d, \"appends\": %llu, "
                "\"seconds\": %.4f, \"appends_per_sec\": %.0f, "
                "\"us_per_append\": %.2f, \"fsyncs\": %llu, "
                "\"bytes_written\": %llu}",
                wal::to_string(p.mode), p.batch,
                static_cast<unsigned long long>(p.appends), p.seconds,
                p.appends_per_sec, p.us_per_append,
                static_cast<unsigned long long>(p.fsyncs),
                static_cast<unsigned long long>(p.bytes_written));
        }
        std::fprintf(f, "\n    ],\n");
        if (points[2].appends_per_sec > 0)
            std::fprintf(f,
                         "    \"group_commit_speedup_over_always\": %.2f\n",
                         points[1].appends_per_sec /
                             points[2].appends_per_sec);
        else
            std::fprintf(f,
                         "    \"group_commit_speedup_over_always\": null\n");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", path);
}

// White-box stage breakdown of whatever protocol rounds the benchmarks
// drove (BM_WbcastDeliveryRoundTrip fills stage/wbcast/* in the global
// registry; on the sim runtime the durations are virtual time). Same
// table shape as `wbamctl run`, one per protocol seen.
void print_stage_tables() {
    const obs::MetricsSnapshot snap = obs::metrics().snapshot();
    std::vector<std::string> protos;
    for (const auto& [name, hist] : snap.histograms) {
        if (name.rfind("stage/", 0) != 0 || hist.count() == 0) continue;
        const std::size_t slash = name.find('/', 6);
        if (slash == std::string::npos) continue;
        const std::string proto = name.substr(6, slash - 6);
        if (std::find(protos.begin(), protos.end(), proto) == protos.end())
            protos.push_back(proto);
    }
    const auto find_hist =
        [&snap](const std::string& name) -> const stats::Histogram* {
        for (const auto& [n, h] : snap.histograms)
            if (n == name && h.count() > 0) return &h;
        return nullptr;
    };
    for (const std::string& proto : protos) {
        std::fprintf(stderr,
                     "stage breakdown (%s, cumulative from submit):\n",
                     proto.c_str());
        std::fprintf(stderr, "  %-16s %10s %10s %10s %10s\n", "stage",
                     "count", "p50_ms", "segment", "p99_ms");
        double prev_p50 = 0;
        for (int s = 0; s < obs::num_stages; ++s) {
            const char* stage_name =
                obs::to_string(static_cast<obs::Stage>(s));
            const stats::Histogram* h =
                find_hist("stage/" + proto + "/" + stage_name);
            if (h == nullptr) continue;
            const double p50 = static_cast<double>(h->percentile(0.50)) / 1e6;
            const double p99 = static_cast<double>(h->percentile(0.99)) / 1e6;
            std::fprintf(stderr, "  %-16s %10llu %10.3f %10.3f %10.3f\n",
                         stage_name,
                         static_cast<unsigned long long>(h->count()), p50,
                         p50 - prev_p50, p99);
            prev_p50 = p50;
        }
    }
}

// A ring of processes forwarding a token: measures raw event overhead of
// the discrete-event scheduler (heap ops + dispatch + FIFO bookkeeping).
class RingProcess final : public Process {
public:
    RingProcess(ProcessId next, std::uint64_t hops) : next_(next), hops_(hops) {}
    void on_start(Context& ctx) override {
        if (ctx.self() == 0) ctx.send(next_, Bytes{1});
    }
    void on_message(Context& ctx, ProcessId, const BufferSlice& b) override {
        if (--hops_ > 0) ctx.send(next_, b);
    }
    void on_timer(Context&, TimerId) override {}

private:
    ProcessId next_;
    std::uint64_t hops_;
};

void BM_SimEventThroughput(benchmark::State& state) {
    const int n = 16;
    const std::uint64_t hops = 100000;
    for (auto _ : state) {
        sim::World world(Topology(1, 1, n - 1),
                         std::make_unique<sim::UniformDelay>(microseconds(10)),
                         1);
        for (ProcessId p = 0; p < n; ++p)
            world.add_process(p, std::make_unique<RingProcess>((p + 1) % n,
                                                               hops));
        world.start();
        world.run_until_idle(seconds(100));
        benchmark::DoNotOptimize(world.events_processed());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(hops));
}
BENCHMARK(BM_SimEventThroughput)->Unit(benchmark::kMillisecond);

// --- full delivery round trip on the selected runtime ------------------------
//
// One closed-loop multicast to both groups of a 2x3 wbcast cluster,
// measured issue -> delivered by every destination group. The runtime is
// selected with --runtime={sim,threaded,net} (satellite of the net-runtime
// PR): sim measures the simulator's wall cost of a virtual round, threaded
// adds real thread handoffs and injected delays, net runs the identical
// protocol over loopback TCP sockets — the paper's deployment shape in
// miniature.
harness::RuntimeKind g_bench_runtime = harness::RuntimeKind::sim;

void BM_WbcastDeliveryRoundTrip(benchmark::State& state) {
    ReplicaConfig replica;
    replica.heartbeat_interval = milliseconds(50);
    replica.suspect_timeout = seconds(30);  // quiet failure machinery
    replica.retry_interval = seconds(10);
    if (g_bench_runtime == harness::RuntimeKind::sim) {
        harness::ClusterConfig cfg;
        cfg.kind = harness::ProtocolKind::wbcast;
        cfg.groups = 2;
        cfg.group_size = 3;
        cfg.clients = 1;
        cfg.replica = replica;
        cfg.delta = microseconds(50);
        harness::Cluster cluster(std::move(cfg));
        std::size_t done = 0;
        for (auto _ : state) {
            cluster.multicast_at(cluster.world().now(), 0, {0, 1});
            ++done;
            while (cluster.log().completed_count() < done)
                cluster.run_for(microseconds(50));
        }
    } else {
        harness::LiveClusterConfig cfg;
        cfg.runtime = g_bench_runtime;
        cfg.kind = harness::ProtocolKind::wbcast;
        cfg.groups = 2;
        cfg.group_size = 3;
        cfg.clients = 1;
        cfg.replica = replica;
        harness::LiveCluster cluster(std::move(cfg));
        for (auto _ : state) {
            cluster.multicast(0, {0, 1});
            if (!cluster.await_completion(seconds(10))) {
                state.SkipWithError("delivery round timed out");
                break;
            }
        }
        cluster.shutdown();
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(harness::to_string(g_bench_runtime));
}
BENCHMARK(BM_WbcastDeliveryRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_HistogramRecord(benchmark::State& state) {
    stats::Histogram h;
    Rng rng(3);
    for (auto _ : state) {
        h.record(static_cast<Duration>(rng.next_below(100'000'000)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramPercentile(benchmark::State& state) {
    stats::Histogram h;
    Rng rng(3);
    for (int i = 0; i < 100000; ++i)
        h.record(static_cast<Duration>(rng.next_below(100'000'000)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(h.percentile(0.99));
    }
}
BENCHMARK(BM_HistogramPercentile);

void BM_RngNext(benchmark::State& state) {
    Rng rng(9);
    for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

}  // namespace
}  // namespace wbam

int main(int argc, char** argv) {
    // Strip --runtime=... before google-benchmark sees the argv (it rejects
    // unknown flags); WBAM_RUNTIME is honoured as the fallback.
    if (const char* env = std::getenv("WBAM_RUNTIME")) {
        if (const auto kind = wbam::harness::parse_runtime_kind(env))
            wbam::g_bench_runtime = *kind;
    }
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--runtime=", 10) == 0) {
            const auto kind = wbam::harness::parse_runtime_kind(argv[i] + 10);
            if (!kind) {
                std::fprintf(stderr, "unknown %s (sim|threaded|net)\n",
                             argv[i]);
                return 2;
            }
            wbam::g_bench_runtime = *kind;
        } else {
            argv[kept++] = argv[i];
        }
    }
    argc = kept;
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    wbam::print_stage_tables();
    wbam::write_bench_json();
    return 0;
}
