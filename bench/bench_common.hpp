// Shared helpers for the figure benchmarks: adversarial convoy schedules,
// latency probes and table printing.
#ifndef WBAM_BENCH_BENCH_COMMON_HPP
#define WBAM_BENCH_BENCH_COMMON_HPP

#include <cstdio>
#include <optional>

#include "harness/cluster.hpp"

namespace wbam::bench {

inline constexpr Duration delta = milliseconds(1);

inline harness::ClusterConfig base_config(harness::ProtocolKind kind,
                                          int groups, int clients,
                                          std::uint64_t seed = 1) {
    harness::ClusterConfig cfg;
    cfg.kind = kind;
    cfg.groups = groups;
    cfg.group_size = kind == harness::ProtocolKind::skeen ? 1 : 3;
    cfg.clients = clients;
    cfg.seed = seed;
    cfg.delta = delta;
    // Keep housekeeping off the measured path.
    cfg.replica.heartbeat_interval = milliseconds(50);
    cfg.replica.suspect_timeout = seconds(10);
    cfg.replica.retry_interval = seconds(5);
    cfg.replica.gc_interval = seconds(5);
    cfg.client_retry = seconds(10);
    return cfg;
}

struct LatencyProbe {
    double group_max = 0;    // first delivery in the slowest group (CF metric)
    double leader_min = 0;   // earliest delivery anywhere
    double follower_min = 0; // earliest non-first delivery within a group
};

// One collision-free multicast to {0, 1}; latencies in units of delta.
inline LatencyProbe collision_free_probe(harness::ProtocolKind kind,
                                         const ReplicaConfig* replica = nullptr) {
    harness::ClusterConfig cfg = base_config(kind, 2, 1);
    if (replica) cfg.replica = *replica;
    harness::Cluster c(cfg);
    const MsgId id = c.multicast_at(0, 0, {0, 1});
    c.run_for(milliseconds(100));
    const auto& rec = c.log().multicasts().at(id);
    LatencyProbe probe;
    if (!rec.partially_delivered()) return probe;
    probe.group_max =
        static_cast<double>(rec.delivery_latency()) / static_cast<double>(delta);
    Duration leader_min = time_never;
    Duration follower_min = time_never;
    for (GroupId g = 0; g < 2; ++g) {
        const Duration first = rec.first_delivery.at(g) - rec.multicast_at;
        leader_min = std::min(leader_min, first);
        for (const ProcessId p : c.topo().members(g)) {
            const auto it = c.log().deliveries().find(p);
            if (it == c.log().deliveries().end() || it->second.empty()) continue;
            const Duration lat = it->second[0].at - rec.multicast_at;
            if (lat > first) follower_min = std::min(follower_min, lat);
        }
    }
    probe.leader_min =
        static_cast<double>(leader_min) / static_cast<double>(delta);
    probe.follower_min =
        follower_min == time_never
            ? probe.group_max
            : static_cast<double>(follower_min) / static_cast<double>(delta);
    return probe;
}

// Worst delivery latency of a victim multicast under an adversarial sweep
// of a conflicting message's injection time (the generalised Figure 2
// schedule). Returns units of delta.
inline double convoy_worst(harness::ProtocolKind kind,
                           const ReplicaConfig* replica = nullptr) {
    const Duration eps = microseconds(10);
    double worst = 0;
    for (Duration offset = 0; offset <= 8 * delta; offset += delta / 8) {
        harness::ClusterConfig cfg = base_config(kind, 2, 2);
        if (replica) cfg.replica = *replica;
        harness::Cluster c(cfg);
        const ProcessId convoy_client = c.topo().client(1);
        c.world().set_link_override(convoy_client, c.topo().initial_leader(0),
                                    eps);
        c.world().set_link_override(convoy_client, c.topo().initial_leader(1),
                                    delta);
        c.multicast_at(0, 0, {1});  // warm group 1's clock
        const TimePoint t1 = milliseconds(50);
        const MsgId m = c.multicast_at(t1, 0, {0, 1});
        c.multicast_at(t1 + offset - 2 * eps, 1, {0, 1});
        c.run_for(milliseconds(200));
        const auto& rec = c.log().multicasts().at(m);
        if (!rec.partially_delivered()) continue;
        worst = std::max(worst, static_cast<double>(rec.delivery_latency()) /
                                    static_cast<double>(delta));
    }
    return worst;
}

}  // namespace wbam::bench

#endif  // WBAM_BENCH_BENCH_COMMON_HPP
