// Shared load-sweep driver for the Fig. 7 (LAN) and Fig. 8 (WAN)
// benchmarks: for each protocol and destination-group count, sweeps the
// number of closed-loop clients and prints (clients, throughput, latency)
// series — the same series the paper's figures plot.
#ifndef WBAM_BENCH_BENCH_LOAD_HPP
#define WBAM_BENCH_BENCH_LOAD_HPP

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/fig_report.hpp"

namespace wbam::bench {

// Parses --runtime={sim,threaded,net} from the bench argv (falling back to
// the WBAM_RUNTIME environment variable). Unknown values abort loudly:
// silently running the wrong runtime would corrupt a figure.
inline harness::RuntimeKind runtime_from_args(int argc, char** argv) {
    const char* value = std::getenv("WBAM_RUNTIME");
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--runtime=", 10) == 0) value = argv[i] + 10;
    }
    if (value == nullptr) return harness::RuntimeKind::sim;
    const auto kind = harness::parse_runtime_kind(value);
    if (!kind) {
        std::fprintf(stderr, "unknown --runtime=%s (sim|threaded|net)\n",
                     value);
        std::exit(2);
    }
    return *kind;
}

// Parses --net-shards=N (falling back to WBAM_NET_SHARDS). Only the net
// runtime reads it; 0 = auto (hardware concurrency).
inline int net_shards_from_args(int argc, char** argv) {
    const char* value = std::getenv("WBAM_NET_SHARDS");
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--net-shards=", 13) == 0)
            value = argv[i] + 13;
    }
    if (value == nullptr) return 0;
    char* end = nullptr;
    const long n = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || n < 0 || n > 64) {
        std::fprintf(stderr, "bad --net-shards=%s (range 0..64)\n", value);
        std::exit(2);
    }
    return static_cast<int>(n);
}

struct SweepSetup {
    const char* name = "";
    // "fig7" / "fig8": tags the emitted BENCH_<tag>.json (path override:
    // the BENCH_FIG_JSON environment variable; empty tag = no JSON).
    const char* json_tag = "";
    harness::RuntimeKind runtime = harness::RuntimeKind::sim;
    std::function<std::unique_ptr<sim::DelayModel>()> make_delays;
    sim::CpuModel cpu;
    std::vector<int> client_counts;
    std::vector<int> dest_group_counts;
    int groups = 10;
    int group_size = 3;
    bool staggered_leaders = false;
    int net_shards = 0;  // net runtime only; 0 = auto
    Duration warmup = milliseconds(200);
    std::uint64_t target_ops = 2500;
    Duration min_measure = milliseconds(500);
    Duration max_measure = seconds(30);
};

inline ReplicaConfig quiet_replica_config() {
    ReplicaConfig replica;
    replica.heartbeat_interval = milliseconds(100);
    replica.suspect_timeout = seconds(30);
    replica.retry_interval = seconds(20);
    replica.gc_interval = seconds(1);
    // Implementation-cost model (calibration in EXPERIMENTS.md): the
    // black-box baselines drive two consensus commands per message through
    // a general-purpose engine; the white-box path pays only lightweight
    // timestamp bookkeeping.
    replica.consensus_cmd_cost = microseconds(12);
    replica.wbcast_multicast_cost = microseconds(10);
    replica.wbcast_accept_cost = nanoseconds(500);
    return replica;
}

inline sim::CpuModel bench_cpu_model() {
    return sim::CpuModel{.per_message = nanoseconds(300),
                         .per_byte = nanoseconds(2),
                         .wakeup = microseconds(3)};
}

// True when the environment asks for a reduced sweep (used while iterating
// on the code; the full run is the default).
inline bool quick_mode() { return std::getenv("WBAM_BENCH_QUICK") != nullptr; }

struct SweepPoint {
    int clients = 0;
    harness::ExperimentResult result;
};

inline void run_sweep(const SweepSetup& setup) {
    using harness::ProtocolKind;
    using harness::RuntimeKind;
    const ProtocolKind kinds[] = {ProtocolKind::wbcast, ProtocolKind::fastcast,
                                  ProtocolKind::ftskeen};
    // The wall-clock runtimes spawn one OS thread (threaded) or one poll
    // loop (net) per process: a 1400-client sweep point would be 1430
    // threads. Cap the client axis so --runtime=threaded/net stays a
    // sanity-scale run; the full axis is the simulator's job.
    std::vector<int> client_counts = setup.client_counts;
    if (setup.runtime != RuntimeKind::sim) {
        std::vector<int> capped;
        for (const int c : client_counts)
            if (c <= 64) capped.push_back(c);
        if (capped.empty()) capped.push_back(16);
        client_counts = capped;
        std::printf("(runtime=%s: client axis capped at 64 — wall-clock "
                    "runtimes run one OS thread per process)\n",
                    harness::to_string(setup.runtime));
    }
    std::printf("=== %s: latency vs throughput, %d groups x %d replicas, "
                "20-byte messages, runtime=%s ===\n",
                setup.name, setup.groups, setup.group_size,
                harness::to_string(setup.runtime));
    // protocol -> d -> points; kept for the cross-protocol summary.
    std::map<int, std::map<int, std::vector<SweepPoint>>> all;
    for (const ProtocolKind kind : kinds) {
        for (const int d : setup.dest_group_counts) {
            std::printf("\n-- %s, multicast to %d group(s) --\n",
                        harness::to_string(kind), d);
            std::printf("%8s %16s %14s %12s %12s\n", "clients", "msgs/s",
                        "mean ms", "p50 ms", "p99 ms");
            for (const int clients : client_counts) {
                harness::ExperimentConfig cfg;
                cfg.runtime = setup.runtime;
                cfg.kind = kind;
                cfg.groups = setup.groups;
                cfg.group_size = setup.group_size;
                cfg.clients = clients;
                cfg.dest_groups = d;
                cfg.staggered_leaders = setup.staggered_leaders;
                cfg.make_delays = setup.make_delays;
                cfg.cpu = setup.cpu;
                cfg.replica = quiet_replica_config();
                cfg.net_shards = setup.net_shards;
                cfg.seed = static_cast<std::uint64_t>(clients) * 31 +
                           static_cast<std::uint64_t>(d);
                cfg.warmup = setup.warmup;
                cfg.target_ops = quick_mode() ? setup.target_ops / 5
                                              : setup.target_ops;
                cfg.min_measure = quick_mode() ? setup.min_measure / 2
                                               : setup.min_measure;
                cfg.max_measure = setup.max_measure;
                const auto r = harness::run_experiment(cfg);
                std::printf("%8d %16.0f %14.3f %12.3f %12.3f\n", clients,
                            r.throughput_ops_s, r.mean_ms, r.p50_ms, r.p99_ms);
                all[static_cast<int>(kind)][d].push_back(SweepPoint{clients, r});
            }
        }
    }
    // The merged BENCH_fig7/fig8 JSON (same schema as the distributed
    // coordinator's — docs/BENCHMARKS.md).
    if (setup.json_tag[0] != '\0') {
        harness::FigReport report;
        report.bench = setup.json_tag;
        report.name = setup.name;
        report.runtime = harness::to_string(setup.runtime);
        report.groups = setup.groups;
        report.group_size = setup.group_size;
        if (setup.runtime == RuntimeKind::net)
            report.net_shards = setup.net_shards;
        for (const ProtocolKind kind : kinds) {
            for (const int d : setup.dest_group_counts) {
                harness::FigSeries series;
                series.protocol = harness::to_string(kind);
                series.dest_groups = d;
                for (const SweepPoint& p : all[static_cast<int>(kind)][d])
                    series.points.push_back(harness::FigPoint{
                        p.clients, p.result.throughput_ops_s, p.result.mean_ms,
                        p.result.p50_ms, p.result.p99_ms, p.result.ops});
                report.series.push_back(std::move(series));
            }
        }
        const char* path = std::getenv("BENCH_FIG_JSON");
        const std::string out =
            path != nullptr ? path
                            : "BENCH_" + std::string(setup.json_tag) + ".json";
        if (report.write(out))
            std::printf("\n(wrote %s)\n", out.c_str());
    }
    // Headline comparison at 1000 clients (the point the paper marks).
    std::printf("\n-- comparison at 1000 clients (WbCast vs FastCast) --\n");
    std::printf("%8s %22s %22s\n", "dests", "throughput ratio", "latency ratio");
    for (const int d : setup.dest_group_counts) {
        const auto& wb = all[static_cast<int>(harness::ProtocolKind::wbcast)][d];
        const auto& fc =
            all[static_cast<int>(harness::ProtocolKind::fastcast)][d];
        const SweepPoint* wb_pt = nullptr;
        const SweepPoint* fc_pt = nullptr;
        for (const auto& p : wb)
            if (p.clients == 1000) wb_pt = &p;
        for (const auto& p : fc)
            if (p.clients == 1000) fc_pt = &p;
        if (!wb_pt || !fc_pt || fc_pt->result.throughput_ops_s <= 0 ||
            wb_pt->result.mean_ms <= 0)
            continue;
        std::printf("%8d %21.2fx %21.2fx\n", d,
                    wb_pt->result.throughput_ops_s /
                        fc_pt->result.throughput_ops_s,
                    fc_pt->result.mean_ms / wb_pt->result.mean_ms);
    }
}

}  // namespace wbam::bench

#endif  // WBAM_BENCH_BENCH_LOAD_HPP
