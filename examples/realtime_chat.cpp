// Real-time runtime demo: a totally-ordered two-room "chat" over the
// white-box protocol, with every process on its own OS thread and real
// (injected) network delays — no discrete-event simulation. Three posters
// race to publish; atomic multicast guarantees that both rooms' replicas
// agree on one interleaving, which the demo prints and verifies.
//
//   build/examples/realtime_chat
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "multicast/api.hpp"
#include "runtime/threaded.hpp"
#include "wbcast/protocol.hpp"

int main() {
    using namespace wbam;

    const Topology topo(2, 3, 3);  // two rooms x three replicas, 3 posters
    runtime::ThreadedWorld world(
        topo, std::make_unique<sim::JitterDelay>(milliseconds(1),
                                                 milliseconds(4)));

    std::mutex mutex;
    std::unordered_map<ProcessId, std::vector<std::string>> feeds;
    DeliverySink sink = [&](Context& ctx, GroupId, const AppMessage& m) {
        const std::lock_guard<std::mutex> guard(mutex);
        feeds[ctx.self()].emplace_back(m.payload.begin(), m.payload.end());
    };
    ReplicaConfig cfg;
    cfg.heartbeat_interval = milliseconds(50);
    cfg.suspect_timeout = milliseconds(500);
    cfg.retry_interval = milliseconds(250);
    for (ProcessId p = 0; p < topo.num_replicas(); ++p)
        world.add_process(p, std::make_unique<wbcast::WbcastReplica>(
                                 topo, p, sink, cfg));

    // Posters: plain processes that publish to both rooms.
    class Poster final : public Process {
    public:
        Poster(Topology t, std::string who) : topo(std::move(t)),
                                              who(std::move(who)) {}
        void on_start(Context& c) override { ctx = &c; }
        void on_message(Context&, ProcessId, const BufferSlice&) override {}
        void on_timer(Context&, TimerId) override {}
        void post(int i) {
            const std::string text = who + "#" + std::to_string(i);
            const AppMessage m = make_app_message(
                make_msg_id(ctx->self(), static_cast<std::uint32_t>(i)), {0, 1},
                Bytes(text.begin(), text.end()));
            const Buffer wire = encode_multicast_request(m);
            ctx->send(topo.initial_leader(0), wire);
            ctx->send(topo.initial_leader(1), wire);
        }
        Topology topo;
        std::string who;
        Context* ctx = nullptr;
    };
    std::vector<Poster*> posters;
    const char* names[] = {"alice", "bob", "carol"};
    for (int i = 0; i < 3; ++i) {
        auto poster = std::make_unique<Poster>(topo, names[i]);
        posters.push_back(poster.get());
        world.add_process(topo.client(i), std::move(poster));
    }

    world.start();
    world.run_for(milliseconds(100));  // let everything boot
    std::printf("Three posters race to publish 5 messages each...\n");
    for (int i = 0; i < 5; ++i)
        for (Poster* p : posters) p->post(i);

    // Wait until every replica has all 15 messages (bounded).
    bool done = false;
    for (int spin = 0; spin < 200 && !done; ++spin) {
        world.run_for(milliseconds(25));
        const std::lock_guard<std::mutex> guard(mutex);
        done = true;
        for (ProcessId p = 0; p < topo.num_replicas(); ++p)
            done &= feeds[p].size() == 15u;
    }
    world.shutdown();
    if (!done) {
        std::printf("timed out waiting for deliveries\n");
        return 1;
    }

    std::printf("\nRoom feed (replica 0's order):\n  ");
    for (const auto& line : feeds[0]) std::printf("%s ", line.c_str());
    std::printf("\n\n");
    bool agree = true;
    for (ProcessId p = 1; p < topo.num_replicas(); ++p)
        agree &= feeds[p] == feeds[0];
    std::printf("All 6 replicas across both rooms agree on the interleaving: "
                "%s\n", agree ? "yes" : "NO");
    return agree ? 0 : 1;
}
