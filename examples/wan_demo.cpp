// Geo-replication demo: 4 groups spread over three data centres with the
// paper's measured round-trip times (Oregon / N. Virginia / England).
// Issues the same multicast under all three fault-tolerant protocols and
// prints the per-group delivery latency, showing how the white-box
// protocol's 3-round critical path translates into ~100ms savings per
// multicast at WAN scale.
//
//   build/examples/wan_demo
#include <cstdio>

#include "harness/cluster.hpp"

int main() {
    using namespace wbam;
    using harness::Cluster;
    using harness::ClusterConfig;
    using harness::ProtocolKind;

    const Duration r12 = milliseconds(60);
    const Duration r23 = milliseconds(75);
    const Duration r13 = milliseconds(130);
    const Duration local = microseconds(200);

    std::printf("3 data centres: R1 Oregon, R2 N. Virginia, R3 England\n");
    std::printf("RTTs: R1-R2 60ms, R2-R3 75ms, R1-R3 130ms\n");
    std::printf("4 groups, one replica per DC, leaders staggered across "
                "DCs;\nclient in R1 multicasts to groups {0, 1}\n\n");

    for (const ProtocolKind kind :
         {ProtocolKind::wbcast, ProtocolKind::fastcast, ProtocolKind::ftskeen}) {
        ClusterConfig cfg;
        cfg.kind = kind;
        cfg.groups = 4;
        cfg.group_size = 3;
        cfg.clients = 1;
        cfg.staggered_leaders = true;  // leaders spread across the DCs
        cfg.make_delays = [=] {
            const Topology topo(4, 3, 1);
            std::vector<int> region(
                static_cast<std::size_t>(topo.num_processes()), 0);
            for (ProcessId p = 0; p < topo.num_replicas(); ++p)
                region[static_cast<std::size_t>(p)] = topo.replica_index(p);
            return std::make_unique<sim::RegionMatrixDelay>(
                region, std::vector<std::vector<Duration>>{{local, r12, r13},
                                                           {r12, local, r23},
                                                           {r13, r23, local}});
        };
        Cluster c(cfg);
        const MsgId id = c.multicast_at(0, 0, {0, 1});
        c.run_for(seconds(2));
        const auto& rec = c.log().multicasts().at(id);
        if (!rec.partially_delivered()) {
            std::printf("%-9s: not delivered?!\n", harness::to_string(kind));
            continue;
        }
        std::printf("%-9s: delivered in", harness::to_string(kind));
        for (const auto& [g, at] : rec.first_delivery)
            std::printf("  g%d=%.0fms", g, to_millis(at - rec.multicast_at));
        std::printf("   (client-perceived %.0fms)\n",
                    to_millis(rec.delivery_latency()));
    }
    std::printf("\nFewer message delays on the critical path -> directly "
                "visible at WAN RTTs.\n");
    return 0;
}
