// Leader-failure demo: narrates the white-box protocol's recovery
// machinery (§IV). A stream of multicasts is interrupted by crashing the
// leader of group 0; the followers' failure detector elects a successor,
// which runs the NEWLEADER / NEW_STATE handshake, re-delivers the
// committed prefix and resumes stuck messages. The demo prints the
// protocol-level log and verifies that no message was lost or duplicated.
//
//   build/examples/recovery_demo
#include <cstdio>

#include "common/log.hpp"
#include "harness/cluster.hpp"
#include "wbcast/protocol.hpp"

int main() {
    using namespace wbam;
    using harness::Cluster;
    using harness::ClusterConfig;

    log::set_level(log::Level::info);  // show recovery narration

    ClusterConfig cfg;
    cfg.kind = harness::ProtocolKind::wbcast;
    cfg.groups = 2;
    cfg.group_size = 3;
    cfg.clients = 1;
    cfg.delta = milliseconds(1);
    cfg.replica.heartbeat_interval = milliseconds(5);
    cfg.replica.suspect_timeout = milliseconds(25);
    cfg.replica.retry_interval = milliseconds(30);
    cfg.client_retry = milliseconds(60);
    Cluster c(cfg);

    std::printf("Streaming 10 multicasts to {g0, g1}; crashing g0's leader "
                "(p0) at t=12ms...\n\n");
    for (int i = 0; i < 10; ++i)
        c.multicast_at(milliseconds(2) + i * milliseconds(3), 0, {0, 1},
                       Bytes{static_cast<std::uint8_t>(i)});
    c.world().at(milliseconds(12), [&c] {
        std::printf("--- CRASH: p0 (leader of group 0) ---\n");
        c.world().crash(0);
    });
    c.run_for(seconds(1));

    std::printf("\nFinal state of group 0's survivors:\n");
    for (const ProcessId p : c.topo().members(0)) {
        if (c.world().is_crashed(p)) continue;
        auto& r = c.world().process_as<wbcast::WbcastReplica>(p);
        const auto it = c.log().deliveries().find(p);
        std::printf("  p%d: %s of %s, delivered %zu messages\n", p,
                    r.status() == wbcast::Status::leader ? "LEADER" : "follower",
                    to_string(r.cballot()).c_str(),
                    it == c.log().deliveries().end() ? 0u : it->second.size());
    }
    const auto result = c.check();
    std::printf("\nSpecification check after recovery: %s\n",
                result.ok() ? "OK — all 10 messages delivered exactly once, "
                              "in one total order"
                            : result.summary().c_str());
    return result.ok() ? 0 : 1;
}
