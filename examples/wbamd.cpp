// wbamd — the atomic multicast node daemon: one OS process per ProcessId,
// speaking the TCP runtime. A cluster is a set of wbamd processes sharing
// one topology and address map; scripts/run_loopback_cluster.sh spins up
// the paper's 2-group x 3-replica shape (plus one client) over loopback
// and validates that every replica delivered the identical sequence, and
// scripts/wbam_deploy.py launches whole emulated-WAN or multi-host
// deployments (docs/DEPLOYMENT.md).
//
//   wbamd --pid=N [--proto=wbcast] [--groups=2] [--group-size=3]
//         [--clients=1] (--base-port=P | --peers=host:port,... |
//         --topology=FILE) [--bench] [--epoch-ns=T] [--net-shards=N]
//         [--run-ms=6000] [--msgs=25] [--payload=32] [--out=FILE]
//         [--metrics-dump=FILE] [--metrics-interval-ms=1000] [-v]
//
// Self-driving mode (default): replica pids run the selected protocol
// and, at exit, write their delivery sequence (one message id per line)
// to --out. Client pids drive a closed-ish workload addressed to every
// group, retrying unacked messages, and exit 0 only when every multicast
// was acknowledged by all destination groups.
//
// Bench mode (--bench): the process joins the distributed benchmark
// plane (src/ctrl/) and takes its entire experiment configuration from
// the coordinator's RUN_SPEC (--proto/--msgs are ignored): replica pids
// start bare behind a ctrl::NodeShim, client pids become closed-loop
// ctrl::BenchDriver load generators, and the LAST client pid is reserved
// for the wbamctl coordinator. The process exits when the coordinator
// orders SHUTDOWN (or at the --run-ms safety deadline, with exit 1).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/log.hpp"
#include "ctrl/bench_plane.hpp"
#include "harness/bootstrap.hpp"
#include "net/world.hpp"
#include "obs/metrics.hpp"
#include "wal/log.hpp"

using namespace wbam;

namespace {

// Client process of the self-driving mode: multicasts `msgs` messages to
// every group (paced by a short timer), retries unacked ones, and flips
// `done` when everything was acknowledged by all destination groups.
class WorkloadClient final : public Process {
public:
    WorkloadClient(Topology topo, int msgs, int payload,
                   std::atomic<bool>* done)
        : topo_(std::move(topo)), msgs_(msgs),
          payload_(static_cast<std::size_t>(payload)), done_(done) {}

    void on_start(Context& ctx) override {
        timer_ = ctx.set_timer(milliseconds(5));
    }

    void on_message(Context&, ProcessId, const BufferSlice& bytes) override {
        const codec::EnvelopeView env(bytes);
        if (env.module != codec::Module::client ||
            env.type != static_cast<std::uint8_t>(ClientMsgType::deliver_ack))
            return;
        const auto it = pending_.find(env.about);
        if (it == pending_.end()) return;
        codec::Reader body = env.body;
        it->second.acked.insert(DeliverAckMsg::decode(body).group);
        if (it->second.acked.size() == it->second.msg.dests.size()) {
            pending_.erase(it);
            ++completed_;
            if (completed_ == msgs_) done_->store(true);
        }
    }

    void on_timer(Context& ctx, TimerId id) override {
        if (id != timer_) return;
        timer_ = ctx.set_timer(milliseconds(5));
        if (issued_ < msgs_) {
            const MsgId mid = make_msg_id(
                ctx.self(), static_cast<std::uint32_t>(issued_++));
            AppMessage m = make_app_message(mid, topo_.all_groups(),
                                            Bytes(payload_, 0x77));
            m.submit_ts = ctx.now();
            auto& p = pending_[mid];
            p.msg = m;
            p.sent_at = ctx.now();
            const Buffer wire = encode_multicast_request(m);
            for (const GroupId g : m.dests)
                ctx.send(topo_.initial_leader(g), wire);
            return;
        }
        // Retry stragglers: the leader guess may be stale or a message may
        // have been lost across a reconnect.
        for (auto& [mid, p] : pending_) {
            if (ctx.now() - p.sent_at < milliseconds(300)) continue;
            p.sent_at = ctx.now();
            const Buffer wire = encode_multicast_request(p.msg);
            for (const GroupId g : p.msg.dests) {
                if (p.acked.count(g)) continue;
                for (const ProcessId r : topo_.members(g)) ctx.send(r, wire);
            }
        }
    }

    int completed() const { return completed_; }

private:
    struct PendingOp {
        AppMessage msg;
        std::unordered_set<GroupId> acked;
        TimePoint sent_at = 0;
    };

    Topology topo_;
    int msgs_;
    std::size_t payload_;
    std::atomic<bool>* done_;
    TimerId timer_ = invalid_timer;
    int issued_ = 0;
    int completed_ = 0;
    std::unordered_map<MsgId, PendingOp> pending_;
};

// --metrics-dump sink: one JSON line per --metrics-interval-ms holding the
// registry delta since the previous line, plus full-registry snapshot lines
// on SIGUSR1 and at exit. Each line is wrapped with a "kind" tag so
// consumers can separate the incremental stream from the totals
// (docs/OBSERVABILITY.md).
volatile std::sig_atomic_t g_dump_requested = 0;

void on_sigusr1(int) { g_dump_requested = 1; }

class MetricsDumper {
public:
    MetricsDumper(const std::string& path, ProcessId pid) : pid_(pid) {
        f_ = std::fopen(path.c_str(), "w");
        if (f_ == nullptr)
            std::fprintf(stderr, "wbamd: cannot write metrics dump %s\n",
                         path.c_str());
        else
            base_ = obs::metrics().snapshot();
    }
    ~MetricsDumper() {
        if (f_ != nullptr) std::fclose(f_);
    }

    MetricsDumper(const MetricsDumper&) = delete;
    MetricsDumper& operator=(const MetricsDumper&) = delete;

    bool ok() const { return f_ != nullptr; }

    // The per-interval line: activity since the previous line only.
    void delta_line() {
        obs::MetricsSnapshot snap = obs::metrics().snapshot();
        write_line("delta", snap.delta_since(base_));
        base_ = std::move(snap);
    }

    // On-demand (SIGUSR1) and exit lines: everything since process start.
    void snapshot_line(const char* kind) {
        write_line(kind, obs::metrics().snapshot());
    }

private:
    void write_line(const char* kind, const obs::MetricsSnapshot& s) {
        std::fprintf(f_, "{\"kind\": \"%s\", \"pid\": %d, \"metrics\": %s}\n",
                     kind, pid_, s.to_json().c_str());
        std::fflush(f_);
    }

    ProcessId pid_;
    std::FILE* f_ = nullptr;
    obs::MetricsSnapshot base_;
};

int write_sequence(const std::string& path, const std::vector<MsgId>& ids) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "wbamd: cannot write %s\n", path.c_str());
        return 1;
    }
    for (const MsgId id : ids)
        std::fprintf(f, "%016llx\n", static_cast<unsigned long long>(id));
    std::fclose(f);
    return 0;
}

net::NetConfig net_config_for(const harness::NodeOptions& o,
                              const net::Endpoint& self) {
    net::NetConfig cfg;
    // Loopback deployments keep the 127.0.0.1 default; anything else
    // (netns mesh addresses, real NICs, hostnames) binds the wildcard so
    // the listener is reachable on whatever address peers dial.
    if (self.host != "127.0.0.1") cfg.bind_host = "0.0.0.0";
    if (o.epoch_ns > 0)
        cfg.epoch = std::chrono::steady_clock::time_point(
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::nanoseconds(o.epoch_ns)));
    cfg.shards = o.net_shards;
    return cfg;
}

}  // namespace

int main(int argc, char** argv) {
    std::string error;
    const auto options = harness::parse_node_args(argc, argv, &error);
    if (!options) {
        std::fprintf(stderr,
                     "wbamd: %s\nusage: wbamd --pid=N (--base-port=P | "
                     "--peers=... | --topology=FILE) [--bench] (see header "
                     "comment)\n",
                     error.c_str());
        return 2;
    }
    const harness::NodeOptions& o = *options;
    if (o.verbose) log::set_level(log::Level::info);

    const auto boot = harness::resolve_bootstrap(o, &error);
    if (!boot) {
        std::fprintf(stderr, "wbamd: %s\n", error.c_str());
        return 2;
    }
    const Topology& topo = boot->topo;

    // The WAL outlives the runtime (declared first, destroyed last): the
    // replica's handlers append to it from the loop thread until shutdown.
    std::optional<wal::Log> wal_log;
    if (!o.wal_dir.empty() && topo.is_replica(o.pid)) {
        const std::string path =
            o.wal_dir + "/p" + std::to_string(o.pid) + ".wal";
        wal_log.emplace(path, *wal::parse_sync_mode(o.wal_sync));
        if (!wal_log->ok()) {
            std::fprintf(stderr, "wbamd: cannot open WAL %s\n", path.c_str());
            return 2;
        }
        std::fprintf(stderr,
                     "wbamd: WAL %s (%s sync): %llu records recovered, %llu "
                     "torn bytes truncated\n",
                     path.c_str(), wal::to_string(wal_log->sync_mode()),
                     static_cast<unsigned long long>(
                         wal_log->stats().records_recovered),
                     static_cast<unsigned long long>(
                         wal_log->stats().truncated_bytes));
        // Fold the WAL's counters into the registry as read-only adapters
        // (snapshot-time reads; the log keeps owning the stats), and record
        // the open-time recovery outcome in the event ring.
        obs::metrics().register_adapter(
            "wal/appends", [&wal_log] { return wal_log->stats().appends; });
        obs::metrics().register_adapter(
            "wal/commits", [&wal_log] { return wal_log->stats().commits; });
        obs::metrics().register_adapter(
            "wal/fsyncs", [&wal_log] { return wal_log->stats().fsyncs; });
        obs::metrics().register_adapter("wal/bytes_written", [&wal_log] {
            return wal_log->stats().bytes_written;
        });
        obs::metrics().register_adapter("wal/records_recovered", [&wal_log] {
            return wal_log->stats().records_recovered;
        });
        obs::metrics().register_adapter("wal/truncated_bytes", [&wal_log] {
            return wal_log->stats().truncated_bytes;
        });
        if (wal_log->stats().records_recovered > 0 ||
            wal_log->stats().truncated_bytes > 0) {
            obs::events().note(
                "wal_recovery",
                path + ": " +
                    std::to_string(wal_log->stats().records_recovered) +
                    " records replayed, " +
                    std::to_string(wal_log->stats().truncated_bytes) +
                    " torn bytes truncated");
        }
    }

    net::NetWorld world(topo, static_cast<std::uint64_t>(o.pid) + 1,
                        net_config_for(o, boot->map.of(o.pid)));

    // Self-driving replica state (the sink runs on the loop thread).
    std::mutex deliveries_mutex;
    std::vector<MsgId> deliveries;
    std::atomic<bool> done{false};
    ctrl::NodeShim* shim = nullptr;

    const ProcessId coordinator_pid =
        topo.num_clients() > 0 ? topo.client(topo.num_clients() - 1)
                               : invalid_process;
    if (o.bench) {
        if (topo.num_clients() < 2) {
            std::fprintf(stderr,
                         "wbamd: --bench needs >= 2 client pids (drivers + "
                         "the wbamctl coordinator)\n");
            return 2;
        }
        if (o.pid == coordinator_pid) {
            std::fprintf(stderr,
                         "wbamd: pid %d is the coordinator seat — run "
                         "'wbamctl run' there instead\n",
                         o.pid);
            return 2;
        }
        if (topo.is_replica(o.pid)) {
            auto proc = std::make_unique<ctrl::NodeShim>(
                topo, o.pid, coordinator_pid, &done,
                wal_log ? &*wal_log : nullptr);
            shim = proc.get();
            world.add_process(o.pid, std::move(proc), boot->map.of(o.pid).port);
        } else {
            world.add_process(o.pid,
                              std::make_unique<ctrl::BenchDriver>(
                                  topo, coordinator_pid, &done),
                              boot->map.of(o.pid).port);
        }
    } else if (topo.is_replica(o.pid)) {
        DeliverySink sink = [&](Context& ctx, GroupId group,
                                const AppMessage& m) {
            {
                const std::lock_guard<std::mutex> guard(deliveries_mutex);
                deliveries.push_back(m.id);
            }
            const ProcessId origin = msg_id_client(m.id);
            if (topo.is_client(origin))
                ctx.send(origin, encode_deliver_ack(group, m.id));
        };
        ReplicaConfig replica;
        replica.heartbeat_interval = milliseconds(50);
        replica.suspect_timeout = seconds(30);  // loopback: no failures
        replica.retry_interval = milliseconds(200);
        if (wal_log) replica.wal = &*wal_log;
        world.add_process(o.pid,
                          harness::make_replica(o.proto, topo, o.pid, sink,
                                                replica),
                          boot->map.of(o.pid).port);
    } else {
        world.add_process(o.pid,
                          std::make_unique<WorkloadClient>(topo, o.msgs,
                                                           o.payload, &done),
                          boot->map.of(o.pid).port);
    }
    world.set_cluster(boot->map);
    world.start();

    // --metrics-dump: periodic delta lines from the slice loop below, a
    // full snapshot whenever SIGUSR1 arrives, and a final one at exit.
    std::optional<MetricsDumper> dumper;
    if (!o.metrics_dump.empty()) {
        dumper.emplace(o.metrics_dump, o.pid);
        if (!dumper->ok()) return 2;
        std::signal(SIGUSR1, on_sigusr1);
    }

    // Replicas serve for the full --run-ms; clients (and every bench-mode
    // process) exit as soon as their done flag flips.
    const bool exits_on_done = o.bench || topo.is_client(o.pid);
    const int slices = o.run_ms / 10;
    const int slices_per_dump = o.metrics_interval_ms / 10;
    for (int s = 0; s < slices; ++s) {
        world.run_for(milliseconds(10));
        if (dumper) {
            if (g_dump_requested != 0) {
                g_dump_requested = 0;
                dumper->snapshot_line("snapshot");
            }
            if ((s + 1) % slices_per_dump == 0) dumper->delta_line();
        }
        if (exits_on_done && done.load()) break;
    }
    world.shutdown();
    if (dumper) dumper->snapshot_line("final");

    if (o.bench) {
        const bool ok = done.load();
        if (shim != nullptr) {
            // The validated snapshot, not the live sequence: tail traffic
            // still settling at the deadline would race the group's files
            // apart (see NodeShim::reported_deliveries).
            const std::vector<MsgId> seq = shim->reported_deliveries();
            std::printf("wbamd bench replica p%d (group %d): delivered %zu "
                        "(%s)\n",
                        o.pid, topo.group_of(o.pid), seq.size(),
                        ok ? "clean shutdown" : "DEADLINE");
            if (!o.out.empty() && write_sequence(o.out, seq) != 0) return 1;
        } else {
            std::printf("wbamd bench driver p%d: %s\n", o.pid,
                        ok ? "clean shutdown" : "DEADLINE");
        }
        return ok ? 0 : 1;
    }

    if (topo.is_client(o.pid)) {
        const bool ok = done.load();
        std::printf("wbamd client p%d: %s (%d multicasts to %d groups)\n",
                    o.pid, ok ? "completed" : "INCOMPLETE", o.msgs,
                    topo.num_groups());
        return ok ? 0 : 1;
    }

    const std::lock_guard<std::mutex> guard(deliveries_mutex);
    std::printf("wbamd replica p%d (%s, group %d): delivered %zu\n", o.pid,
                harness::to_string(o.proto), topo.group_of(o.pid),
                deliveries.size());
    if (!o.out.empty()) return write_sequence(o.out, deliveries);
    return 0;
}
