// wbamd — the atomic multicast node daemon: one OS process per ProcessId,
// speaking the TCP runtime. A cluster is a set of wbamd processes sharing
// one topology and address map; scripts/run_loopback_cluster.sh spins up
// the paper's 2-group x 3-replica shape (plus one client) over loopback
// and validates that every replica delivered the identical sequence.
//
//   wbamd --pid=N [--proto=wbcast] [--groups=2] [--group-size=3]
//         [--clients=1] --base-port=P [--peers=host:port,...]
//         [--run-ms=6000] [--msgs=25] [--payload=32] [--out=FILE] [-v]
//
// Replica pids run the selected protocol and, at exit, write their
// delivery sequence (one message id per line) to --out. Client pids drive
// a closed-ish workload addressed to every group, retrying unacked
// messages, and exit 0 only when every multicast was acknowledged by all
// destination groups.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/log.hpp"
#include "harness/cluster.hpp"
#include "net/world.hpp"

using namespace wbam;

namespace {

struct Options {
    ProcessId pid = invalid_process;
    harness::ProtocolKind proto = harness::ProtocolKind::wbcast;
    int groups = 2;
    int group_size = 3;
    int clients = 1;
    int base_port = 0;
    std::string peers;
    int run_ms = 6000;
    int msgs = 25;
    int payload = 32;
    std::string out;
    bool verbose = false;
};

const char* flag_value(const char* arg, const char* name) {
    const std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') return arg + n + 1;
    return nullptr;
}

bool parse_args(int argc, char** argv, Options& o) {
    for (int i = 1; i < argc; ++i) {
        const char* v = nullptr;
        if ((v = flag_value(argv[i], "--pid"))) {
            o.pid = std::atoi(v);
        } else if ((v = flag_value(argv[i], "--proto"))) {
            const auto kind = harness::parse_protocol_kind(v);
            if (!kind) {
                std::fprintf(stderr, "unknown --proto=%s\n", v);
                return false;
            }
            o.proto = *kind;
        } else if ((v = flag_value(argv[i], "--groups"))) {
            o.groups = std::atoi(v);
        } else if ((v = flag_value(argv[i], "--group-size"))) {
            o.group_size = std::atoi(v);
        } else if ((v = flag_value(argv[i], "--clients"))) {
            o.clients = std::atoi(v);
        } else if ((v = flag_value(argv[i], "--base-port"))) {
            o.base_port = std::atoi(v);
        } else if ((v = flag_value(argv[i], "--peers"))) {
            o.peers = v;
        } else if ((v = flag_value(argv[i], "--run-ms"))) {
            o.run_ms = std::atoi(v);
        } else if ((v = flag_value(argv[i], "--msgs"))) {
            o.msgs = std::atoi(v);
        } else if ((v = flag_value(argv[i], "--payload"))) {
            o.payload = std::atoi(v);
        } else if ((v = flag_value(argv[i], "--out"))) {
            o.out = v;
        } else if (std::strcmp(argv[i], "-v") == 0) {
            o.verbose = true;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return false;
        }
    }
    if (o.pid == invalid_process || (o.base_port == 0 && o.peers.empty())) {
        std::fprintf(stderr,
                     "usage: wbamd --pid=N --base-port=P [--proto=...] "
                     "(see header comment)\n");
        return false;
    }
    return true;
}

// Client process: multicasts `msgs` messages to every group (paced by a
// short timer), retries unacked ones, and flips `done` when everything
// was acknowledged by all destination groups.
class WorkloadClient final : public Process {
public:
    WorkloadClient(Topology topo, int msgs, int payload,
                   std::atomic<bool>* done)
        : topo_(std::move(topo)), msgs_(msgs),
          payload_(static_cast<std::size_t>(payload)), done_(done) {}

    void on_start(Context& ctx) override {
        timer_ = ctx.set_timer(milliseconds(5));
    }

    void on_message(Context&, ProcessId, const BufferSlice& bytes) override {
        const codec::EnvelopeView env(bytes);
        if (env.module != codec::Module::client ||
            env.type != static_cast<std::uint8_t>(ClientMsgType::deliver_ack))
            return;
        const auto it = pending_.find(env.about);
        if (it == pending_.end()) return;
        codec::Reader body = env.body;
        it->second.acked.insert(DeliverAckMsg::decode(body).group);
        if (it->second.acked.size() == it->second.msg.dests.size()) {
            pending_.erase(it);
            ++completed_;
            if (completed_ == msgs_) done_->store(true);
        }
    }

    void on_timer(Context& ctx, TimerId id) override {
        if (id != timer_) return;
        timer_ = ctx.set_timer(milliseconds(5));
        if (issued_ < msgs_) {
            const MsgId mid = make_msg_id(
                ctx.self(), static_cast<std::uint32_t>(issued_++));
            AppMessage m = make_app_message(mid, topo_.all_groups(),
                                            Bytes(payload_, 0x77));
            auto& p = pending_[mid];
            p.msg = m;
            p.sent_at = ctx.now();
            const Buffer wire = encode_multicast_request(m);
            for (const GroupId g : m.dests)
                ctx.send(topo_.initial_leader(g), wire);
            return;
        }
        // Retry stragglers: the leader guess may be stale or a message may
        // have been lost across a reconnect.
        for (auto& [mid, p] : pending_) {
            if (ctx.now() - p.sent_at < milliseconds(300)) continue;
            p.sent_at = ctx.now();
            const Buffer wire = encode_multicast_request(p.msg);
            for (const GroupId g : p.msg.dests) {
                if (p.acked.count(g)) continue;
                for (const ProcessId r : topo_.members(g)) ctx.send(r, wire);
            }
        }
    }

    int completed() const { return completed_; }

private:
    struct PendingOp {
        AppMessage msg;
        std::unordered_set<GroupId> acked;
        TimePoint sent_at = 0;
    };

    Topology topo_;
    int msgs_;
    std::size_t payload_;
    std::atomic<bool>* done_;
    TimerId timer_ = invalid_timer;
    int issued_ = 0;
    int completed_ = 0;
    std::unordered_map<MsgId, PendingOp> pending_;
};

}  // namespace

int main(int argc, char** argv) {
    Options o;
    if (!parse_args(argc, argv, o)) return 2;
    if (o.verbose) log::set_level(log::Level::info);

    const Topology topo(o.groups, o.group_size, o.clients);
    if (o.pid < 0 || o.pid >= topo.num_processes()) {
        std::fprintf(stderr, "wbamd: --pid=%d outside the %d-process topology\n",
                     o.pid, topo.num_processes());
        return 2;
    }

    net::ClusterMap map;
    if (!o.peers.empty()) {
        const auto parsed = net::parse_cluster(o.peers);
        if (!parsed ||
            parsed->endpoints.size() !=
                static_cast<std::size_t>(topo.num_processes())) {
            std::fprintf(stderr, "wbamd: malformed --peers list\n");
            return 2;
        }
        map = *parsed;
    } else {
        map = net::loopback_cluster(topo,
                                    static_cast<std::uint16_t>(o.base_port));
    }

    net::NetWorld world(topo, static_cast<std::uint64_t>(o.pid) + 1);

    // Replica-side delivery record (the sink runs on the loop thread).
    std::mutex deliveries_mutex;
    std::vector<MsgId> deliveries;
    std::atomic<bool> client_done{false};

    if (topo.is_replica(o.pid)) {
        DeliverySink sink = [&](Context& ctx, GroupId group,
                                const AppMessage& m) {
            {
                const std::lock_guard<std::mutex> guard(deliveries_mutex);
                deliveries.push_back(m.id);
            }
            const ProcessId origin = msg_id_client(m.id);
            if (topo.is_client(origin))
                ctx.send(origin, encode_deliver_ack(group, m.id));
        };
        ReplicaConfig replica;
        replica.heartbeat_interval = milliseconds(50);
        replica.suspect_timeout = seconds(30);  // loopback: no failures
        replica.retry_interval = milliseconds(200);
        world.add_process(o.pid,
                          harness::make_replica(o.proto, topo, o.pid, sink,
                                                replica),
                          map.of(o.pid).port);
    } else {
        world.add_process(o.pid,
                          std::make_unique<WorkloadClient>(topo, o.msgs,
                                                           o.payload,
                                                           &client_done),
                          map.of(o.pid).port);
    }
    world.set_cluster(map);
    world.start();

    // Replicas serve for the full --run-ms; the client exits as soon as
    // its workload completed (or gives up at the deadline).
    const bool is_client = topo.is_client(o.pid);
    const int slices = o.run_ms / 10;
    for (int s = 0; s < slices; ++s) {
        world.run_for(milliseconds(10));
        if (is_client && client_done.load()) break;
    }
    world.shutdown();

    if (is_client) {
        const bool ok = client_done.load();
        std::printf("wbamd client p%d: %s (%d multicasts to %d groups)\n",
                    o.pid, ok ? "completed" : "INCOMPLETE", o.msgs, o.groups);
        return ok ? 0 : 1;
    }

    const std::lock_guard<std::mutex> guard(deliveries_mutex);
    std::printf("wbamd replica p%d (%s, group %d): delivered %zu\n", o.pid,
                harness::to_string(o.proto), topo.group_of(o.pid),
                deliveries.size());
    if (!o.out.empty()) {
        std::FILE* f = std::fopen(o.out.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "wbamd: cannot write %s\n", o.out.c_str());
            return 1;
        }
        for (const MsgId id : deliveries)
            std::fprintf(f, "%016llx\n", static_cast<unsigned long long>(id));
        std::fclose(f);
    }
    return 0;
}
