// A partitioned replicated bank built on atomic multicast — the paper's
// motivating application (§I). Accounts are sharded over four replica
// groups; cross-shard transfers are multicast to both owning groups and
// made atomic by the total order. The example runs a random transfer
// workload and then audits the invariants: every replica of a shard holds
// identical state, and money is conserved.
//
//   build/examples/kv_bank
#include <cstdio>

#include "kvstore/kv_cluster.hpp"

int main() {
    using namespace wbam;

    harness::ClusterConfig cfg;
    cfg.kind = harness::ProtocolKind::wbcast;
    cfg.groups = 4;
    cfg.group_size = 3;
    cfg.clients = 3;
    cfg.delta = milliseconds(1);
    kv::KvCluster bank(cfg);

    const int accounts = 16;
    const std::int64_t opening = 1000;
    for (int i = 0; i < accounts; ++i)
        bank.put_at(i * microseconds(100), 0, "acct-" + std::to_string(i),
                    opening);
    bank.run_for(milliseconds(50));
    std::printf("Opened %d accounts x %lld: total = %lld\n", accounts,
                static_cast<long long>(opening),
                static_cast<long long>(bank.total_balance()));

    // Random transfers from three concurrent clients; most cross shards.
    Rng rng(2024);
    const int transfers = 200;
    for (int i = 0; i < transfers; ++i) {
        const auto from = static_cast<int>(rng.next_below(accounts));
        auto to = static_cast<int>(rng.next_below(accounts));
        if (to == from) to = (to + 1) % accounts;
        bank.transfer_at(milliseconds(60) + i * microseconds(300),
                         static_cast<int>(rng.next_below(3)),
                         "acct-" + std::to_string(from),
                         "acct-" + std::to_string(to),
                         static_cast<std::int64_t>(rng.next_below(50)));
    }
    bank.run_for(milliseconds(500));

    std::printf("Ran %d cross-shard transfers from 3 concurrent clients\n",
                transfers);
    std::printf("  per-shard replica agreement : %s\n",
                bank.replicas_agree() ? "yes (state hashes equal)" : "NO");
    for (int r = 0; r < 3; ++r)
        std::printf("  total balance (replica %d)  : %lld\n", r,
                    static_cast<long long>(bank.total_balance(r)));
    const auto check = bank.cluster().check();
    std::printf("  multicast specification     : %s\n",
                check.ok() ? "OK" : check.summary().c_str());

    const bool conserved = bank.total_balance() == accounts * opening;
    std::printf("\n%s\n", conserved && bank.replicas_agree() && check.ok()
                              ? "Atomicity held: no money created or destroyed."
                              : "INVARIANT VIOLATION");
    return conserved ? 0 : 1;
}
