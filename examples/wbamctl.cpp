// wbamctl — control CLI of the distributed benchmark plane.
//
//   wbamctl run --topology=FILE [--proto=wbcast] [--dest-groups=1]
//               [--sessions=4] [--payload=20] [--warmup-ms=500]
//               [--measure-ms=3000] [--sample-ms=250] [--seed=1]
//               [--batching] [--epoch-ns=T] [--net-shards=N]
//               [--deadline-ms=120000]
//               [--workload=bytes|kv] [--kv-keys=1000] [--kv-theta=0.99]
//               [--kv-read-pct=50] [--kv-cross-pct=10]
//               [--metrics-dump=FILE]
//               [--fig=7] [--out=BENCH_fig7.json] [-v]
//
//     Takes the coordinator seat (the LAST client pid of the topology
//     file), distributes the experiment spec to every wbamd --bench
//     process, opens the measurement window, merges the streamed latency
//     samples, validates that every replica group agrees on its delivery
//     sequence, and writes the merged BENCH_fig7/fig8-schema JSON.
//     Exit 0 only on a validated run.
//
//   wbamctl sim --topology=FILE [same workload flags] [--clients=N]
//               [--target-ops=2000] [--out=...]
//
//     Runs the SAME topology file through the deterministic simulator
//     (sim::LinkMatrixDelay built from the file's owd matrix) and emits
//     the same JSON schema — the simulated prediction of the deployed
//     run. All client pids drive load (no coordinator seat in-process).
//
//   wbamctl topology [--groups=2] [--group-size=3] [--gen-clients=3]
//                    [--regions=2] [--local=100us] [--cross=20ms]
//                    [--base-port=7000] [--out=FILE]
//   wbamctl topology --check=FILE
//
//     Generates a grouped topology file (replicas regioned by group,
//     clients round-robin) or validates an existing one.
//
// Deployment modes and the file format: docs/DEPLOYMENT.md.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/log.hpp"
#include "ctrl/bench_plane.hpp"
#include "harness/experiment.hpp"
#include "obs/stage.hpp"
#include "harness/topology_spec.hpp"
#include "net/world.hpp"

using namespace wbam;

namespace {

struct CtlOptions {
    std::string topology_file;
    std::string check_file;
    std::string out;
    std::string metrics_dump;  // run only: cluster-merged metrics JSON
    harness::ProtocolKind proto = harness::ProtocolKind::wbcast;
    int dest_groups = 1;
    int sessions = 4;
    int clients = 0;  // sim only; 0 = the topology file's client count
    int payload = 20;
    int warmup_ms = 500;
    int measure_ms = 3000;
    int sample_ms = 250;
    int deadline_ms = 120'000;
    std::uint64_t target_ops = 2000;  // sim only
    std::uint64_t seed = 1;
    bool batching = false;
    std::int64_t epoch_ns = 0;
    // Scale-out KV workload (run only; the sim path keeps opaque payloads)
    ctrl::WorkloadKind workload = ctrl::WorkloadKind::bytes;
    int kv_keys = 1000;
    double kv_theta = 0.99;
    int kv_read_pct = 50;
    int kv_cross_pct = 10;
    int net_shards = 0;  // coordinator-side NetWorld shards; 0 = auto
    int fig = 7;
    bool verbose = false;
    // topology generation
    int groups = 2;
    int group_size = 3;
    int gen_clients = 3;
    int regions = 2;
    Duration local = microseconds(100);
    Duration cross = milliseconds(20);
    int base_port = 7000;
};

const char* flag_value(const char* arg, const char* name) {
    const std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') return arg + n + 1;
    return nullptr;
}

bool parse_flags(int argc, char** argv, int first, CtlOptions& o) {
    for (int i = first; i < argc; ++i) {
        const char* v = nullptr;
        auto int_flag = [&](const char* name, int* out, int min, int max) {
            if ((v = flag_value(argv[i], name)) == nullptr) return false;
            char* end = nullptr;
            const long parsed = std::strtol(v, &end, 10);
            if (end == v || *end != '\0' || parsed < min || parsed > max) {
                std::fprintf(stderr,
                             "wbamctl: bad value in %s (range %d..%d)\n",
                             argv[i], min, max);
                std::exit(2);
            }
            *out = static_cast<int>(parsed);
            return true;
        };
        auto dur_flag = [&](const char* name, Duration* out) {
            if ((v = flag_value(argv[i], name)) == nullptr) return false;
            const auto d = harness::parse_duration(v);
            if (!d) {
                std::fprintf(stderr, "wbamctl: bad duration in %s\n", argv[i]);
                std::exit(2);
            }
            *out = *d;
            return true;
        };
        if ((v = flag_value(argv[i], "--topology"))) {
            o.topology_file = v;
        } else if ((v = flag_value(argv[i], "--check"))) {
            o.check_file = v;
        } else if ((v = flag_value(argv[i], "--out"))) {
            o.out = v;
        } else if ((v = flag_value(argv[i], "--metrics-dump"))) {
            o.metrics_dump = v;
        } else if ((v = flag_value(argv[i], "--proto"))) {
            const auto kind = harness::parse_protocol_kind(v);
            if (!kind) {
                std::fprintf(stderr, "wbamctl: unknown --proto=%s\n", v);
                return false;
            }
            o.proto = *kind;
        } else if ((v = flag_value(argv[i], "--seed"))) {
            o.seed = std::strtoull(v, nullptr, 10);
        } else if ((v = flag_value(argv[i], "--target-ops"))) {
            o.target_ops = std::strtoull(v, nullptr, 10);
        } else if ((v = flag_value(argv[i], "--epoch-ns"))) {
            o.epoch_ns = static_cast<std::int64_t>(
                std::strtoull(v, nullptr, 10));
        } else if ((v = flag_value(argv[i], "--workload"))) {
            if (std::strcmp(v, "bytes") == 0) {
                o.workload = ctrl::WorkloadKind::bytes;
            } else if (std::strcmp(v, "kv") == 0) {
                o.workload = ctrl::WorkloadKind::kv;
            } else {
                std::fprintf(stderr, "wbamctl: unknown --workload=%s\n", v);
                return false;
            }
        } else if ((v = flag_value(argv[i], "--kv-theta"))) {
            char* end = nullptr;
            o.kv_theta = std::strtod(v, &end);
            if (end == v || *end != '\0' || o.kv_theta < 0 ||
                o.kv_theta >= 1) {
                std::fprintf(stderr,
                             "wbamctl: --kv-theta must be in [0,1)\n");
                std::exit(2);
            }
        } else if (int_flag("--kv-keys", &o.kv_keys, 2, 100'000'000) ||
                   int_flag("--kv-read-pct", &o.kv_read_pct, 0, 100) ||
                   int_flag("--kv-cross-pct", &o.kv_cross_pct, 0, 100) ||
                   int_flag("--dest-groups", &o.dest_groups, 1, 4096) ||
                   int_flag("--sessions", &o.sessions, 1, 1 << 16) ||
                   int_flag("--clients", &o.clients, 0, 1 << 20) ||
                   int_flag("--payload", &o.payload, 0, 4 << 20) ||
                   int_flag("--warmup-ms", &o.warmup_ms, 0, 3'600'000) ||
                   int_flag("--measure-ms", &o.measure_ms, 1, 3'600'000) ||
                   int_flag("--sample-ms", &o.sample_ms, 1, 60'000) ||
                   int_flag("--deadline-ms", &o.deadline_ms, 1, 86'400'000) ||
                   int_flag("--net-shards", &o.net_shards, 0, 64) ||
                   int_flag("--fig", &o.fig, 7, 8) ||
                   int_flag("--groups", &o.groups, 1, 4096) ||
                   int_flag("--group-size", &o.group_size, 1, 99) ||
                   int_flag("--gen-clients", &o.gen_clients, 1, 1 << 20) ||
                   int_flag("--regions", &o.regions, 1, 64) ||
                   int_flag("--base-port", &o.base_port, 1, 65535) ||
                   dur_flag("--local", &o.local) ||
                   dur_flag("--cross", &o.cross)) {
        } else if (std::strcmp(argv[i], "--batching") == 0) {
            o.batching = true;
        } else if (std::strcmp(argv[i], "-v") == 0) {
            o.verbose = true;
        } else {
            std::fprintf(stderr, "wbamctl: unknown argument: %s\n", argv[i]);
            return false;
        }
    }
    return true;
}

ctrl::BenchSpec spec_from(const CtlOptions& o) {
    ctrl::BenchSpec spec;
    spec.proto = o.proto;
    spec.dest_groups = static_cast<std::uint32_t>(o.dest_groups);
    spec.payload = static_cast<std::uint32_t>(o.payload);
    spec.sessions = static_cast<std::uint32_t>(o.sessions);
    spec.warmup = milliseconds(o.warmup_ms);
    spec.measure = milliseconds(o.measure_ms);
    spec.sample_interval = milliseconds(o.sample_ms);
    spec.seed = o.seed;
    spec.batching_enabled = o.batching;
    spec.net_shards = static_cast<std::uint32_t>(o.net_shards);
    spec.workload = o.workload;
    spec.kv_keys = static_cast<std::uint32_t>(o.kv_keys);
    spec.kv_theta_milli = static_cast<std::uint32_t>(o.kv_theta * 1000.0);
    spec.kv_read_pct = static_cast<std::uint32_t>(o.kv_read_pct);
    spec.kv_cross_pct = static_cast<std::uint32_t>(o.kv_cross_pct);
    return spec;
}

harness::FigReport report_skeleton(const CtlOptions& o,
                                   const harness::TopologySpec& spec,
                                   const char* runtime) {
    harness::FigReport report;
    report.bench = o.fig == 8 ? "fig8" : "fig7";
    report.runtime = runtime;
    report.groups = spec.groups;
    report.group_size = spec.group_size;
    report.payload = static_cast<std::uint32_t>(o.payload);
    report.net_shards = o.net_shards;
    report.name = std::string(harness::to_string(o.proto)) + ", " +
                  std::to_string(spec.groups) + "x" +
                  std::to_string(spec.group_size) + " replicas, " +
                  std::to_string(spec.regions) + " regions";
    if (o.workload == ctrl::WorkloadKind::kv) {
        report.workload = "kv";
        report.kv_keys = static_cast<std::uint32_t>(o.kv_keys);
        report.kv_theta = o.kv_theta;
        report.kv_read_pct = static_cast<std::uint32_t>(o.kv_read_pct);
        report.kv_cross_pct = static_cast<std::uint32_t>(o.kv_cross_pct);
        report.name += ", kv zipf " + std::to_string(o.kv_theta);
    }
    return report;
}

std::string default_out(const CtlOptions& o) {
    return o.out.empty()
               ? (o.fig == 8 ? "BENCH_fig8.json" : "BENCH_fig7.json")
               : o.out;
}

int cmd_run(const CtlOptions& o) {
    if (o.topology_file.empty()) {
        std::fprintf(stderr, "wbamctl run: --topology=FILE is required\n");
        return 2;
    }
    if (o.kv_read_pct + o.kv_cross_pct > 100) {
        std::fprintf(stderr,
                     "wbamctl run: --kv-read-pct + --kv-cross-pct "
                     "must not exceed 100\n");
        return 2;
    }
    std::string error;
    const auto spec = harness::TopologySpec::load(o.topology_file, &error);
    if (!spec) {
        std::fprintf(stderr, "wbamctl: %s\n", error.c_str());
        return 2;
    }
    const Topology topo = spec->topology();
    if (topo.num_clients() < 2) {
        std::fprintf(stderr,
                     "wbamctl run: topology needs >= 2 client pids "
                     "(drivers + the coordinator seat)\n");
        return 2;
    }
    const ProcessId self = topo.client(topo.num_clients() - 1);

    ctrl::CoordinatorConfig ccfg;
    ccfg.spec = spec_from(o);
    ccfg.shared_epoch = o.epoch_ns > 0;
    ccfg.deadline = milliseconds(o.deadline_ms);

    net::NetConfig ncfg;
    ncfg.shards = o.net_shards;
    if (spec->cluster_map().of(self).host != "127.0.0.1")
        ncfg.bind_host = "0.0.0.0";
    if (o.epoch_ns > 0)
        ncfg.epoch = std::chrono::steady_clock::time_point(
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::nanoseconds(o.epoch_ns)));
    net::NetWorld world(topo, static_cast<std::uint64_t>(self) + 1, ncfg);
    auto coordinator = std::make_unique<ctrl::Coordinator>(topo, ccfg);
    ctrl::Coordinator* coord = coordinator.get();
    world.add_process(self, std::move(coordinator),
                      spec->cluster_map().of(self).port);
    world.set_cluster(spec->cluster_map());
    world.start();

    const int slices = o.deadline_ms / 10 + 100;
    for (int s = 0; s < slices && !coord->finished(); ++s)
        world.run_for(milliseconds(10));
    world.shutdown();

    if (!coord->finished() || !coord->succeeded()) {
        std::fprintf(stderr, "wbamctl run: FAILED — %s\n",
                     coord->finished() ? coord->error().c_str()
                                       : "coordinator never finished");
        return 1;
    }

    harness::FigReport report = report_skeleton(o, *spec, "net-distributed");
    report.driver_processes = coord->drivers();
    report.samples_streamed = coord->samples_streamed();
    harness::FigSeries series;
    series.protocol = harness::to_string(o.proto);
    series.dest_groups = o.dest_groups;
    series.points.push_back(coord->result_point());
    report.series.push_back(std::move(series));

    // White-box stage breakdown: cumulative-from-submit latency per
    // protocol phase, bucket-merged across every replica (exact
    // percentiles), plus an e2e row from the driver-side sample merge.
    // Consecutive p50 deltas (segment_ms) telescope to the delivered
    // median; the e2e segment is the deliver -> client-ack return hop.
    const std::string stage_prefix =
        std::string("stage/") + harness::protocol_id(o.proto) + "/";
    double prev_p50 = 0;
    for (int s = 0; s < obs::num_stages; ++s) {
        const char* stage_name = obs::to_string(static_cast<obs::Stage>(s));
        const auto it =
            coord->merged_histograms().find(stage_prefix + stage_name);
        if (it == coord->merged_histograms().end() ||
            it->second.count() == 0)
            continue;
        harness::FigStage row;
        row.name = stage_name;
        row.count = it->second.count();
        row.p50_ms = to_millis(it->second.percentile(0.50));
        row.p99_ms = to_millis(it->second.percentile(0.99));
        row.segment_ms = row.p50_ms - prev_p50;
        prev_p50 = row.p50_ms;
        report.stages.push_back(std::move(row));
    }
    if (!report.stages.empty() && coord->merged_latency().count() > 0) {
        harness::FigStage e2e;
        e2e.name = "e2e";
        e2e.count = coord->merged_latency().count();
        e2e.p50_ms = to_millis(coord->merged_latency().percentile(0.50));
        e2e.p99_ms = to_millis(coord->merged_latency().percentile(0.99));
        e2e.segment_ms = e2e.p50_ms - prev_p50;
        report.stages.push_back(std::move(e2e));
    }
    for (const auto& [name, value] : coord->merged_counters())
        report.metrics.emplace_back(name, value);

    const std::string out = default_out(o);
    if (!report.write(out)) return 1;
    const harness::FigPoint& pt = report.series[0].points[0];
    std::printf(
        "wbamctl run: OK — %d sessions on %d drivers: %.0f ops/s, "
        "mean %.2f ms, p50 %.2f ms, p99 %.2f ms (%llu ops, %llu samples; "
        "delivery sequences validated on all %d replicas) -> %s\n",
        pt.clients, coord->drivers(), pt.throughput_ops_s, pt.mean_ms,
        pt.p50_ms, pt.p99_ms, static_cast<unsigned long long>(pt.ops),
        static_cast<unsigned long long>(coord->samples_streamed()),
        topo.num_replicas(), out.c_str());
    if (!report.stages.empty()) {
        std::printf("wbamctl run: stage breakdown (%s, cluster-merged):\n",
                    harness::to_string(o.proto));
        std::printf("  %-16s %10s %10s %10s %10s\n", "stage", "count",
                    "p50_ms", "segment", "p99_ms");
        for (const harness::FigStage& st : report.stages)
            std::printf("  %-16s %10llu %10.2f %10.2f %10.2f\n",
                        st.name.c_str(),
                        static_cast<unsigned long long>(st.count), st.p50_ms,
                        st.segment_ms, st.p99_ms);
    }
    if (!o.metrics_dump.empty()) {
        obs::MetricsSnapshot merged;
        merged.counters.assign(coord->merged_counters().begin(),
                               coord->merged_counters().end());
        merged.histograms.assign(coord->merged_histograms().begin(),
                                 coord->merged_histograms().end());
        std::FILE* f = std::fopen(o.metrics_dump.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "wbamctl run: cannot write %s\n",
                         o.metrics_dump.c_str());
            return 1;
        }
        const std::string json = merged.to_json();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("wbamctl run: cluster-merged metrics -> %s\n",
                    o.metrics_dump.c_str());
    }
    return 0;
}

int cmd_sim(const CtlOptions& o) {
    if (o.topology_file.empty()) {
        std::fprintf(stderr, "wbamctl sim: --topology=FILE is required\n");
        return 2;
    }
    if (o.workload == ctrl::WorkloadKind::kv) {
        std::fprintf(stderr,
                     "wbamctl sim: --workload=kv is only supported by "
                     "'run' (the sim sweep drives opaque payloads; the KV "
                     "conservation tests cover the simulated store)\n");
        return 2;
    }
    std::string error;
    const auto spec = harness::TopologySpec::load(o.topology_file, &error);
    if (!spec) {
        std::fprintf(stderr, "wbamctl: %s\n", error.c_str());
        return 2;
    }
    harness::ExperimentConfig cfg;
    cfg.runtime = harness::RuntimeKind::sim;
    cfg.kind = o.proto;
    cfg.groups = spec->groups;
    cfg.group_size = spec->group_size;
    // The sim has no coordinator seat: every client pid drives load. A
    // --clients override would change the process count and invalidate
    // the file's per-process region table, so it is rejected here.
    if (o.clients != 0 && o.clients != spec->clients) {
        std::fprintf(stderr,
                     "wbamctl sim: --clients=%d conflicts with the topology "
                     "file's %d client pids (regions are per-process)\n",
                     o.clients, spec->clients);
        return 2;
    }
    cfg.clients = spec->clients;
    cfg.staggered_leaders = spec->staggered_leaders;
    cfg.dest_groups = o.dest_groups;
    cfg.payload = static_cast<std::uint32_t>(o.payload);
    cfg.make_delays = [spec] { return spec->delay_model(); };
    cfg.seed = o.seed;
    cfg.warmup = milliseconds(o.warmup_ms);
    cfg.target_ops = o.target_ops;
    cfg.min_measure = milliseconds(o.measure_ms);
    const auto r = harness::run_experiment(cfg);

    harness::FigReport report = report_skeleton(o, *spec, "sim");
    harness::FigSeries series;
    series.protocol = harness::to_string(o.proto);
    series.dest_groups = o.dest_groups;
    series.points.push_back(harness::FigPoint{
        spec->clients, r.throughput_ops_s, r.mean_ms, r.p50_ms, r.p99_ms,
        r.ops});
    report.series.push_back(std::move(series));
    const std::string out = default_out(o);
    if (!report.write(out)) return 1;
    std::printf("wbamctl sim: %d clients: %.0f ops/s, mean %.2f ms, "
                "p50 %.2f ms, p99 %.2f ms -> %s\n",
                spec->clients, r.throughput_ops_s, r.mean_ms, r.p50_ms,
                r.p99_ms, out.c_str());
    return 0;
}

int cmd_topology(const CtlOptions& o) {
    if (!o.check_file.empty()) {
        std::string error;
        const auto spec = harness::TopologySpec::load(o.check_file, &error);
        if (!spec) {
            std::fprintf(stderr, "wbamctl topology: INVALID — %s\n",
                         error.c_str());
            return 1;
        }
        std::printf("wbamctl topology: OK — %d groups x %d replicas + %d "
                    "clients across %d regions (%d processes)\n",
                    spec->groups, spec->group_size, spec->clients,
                    spec->regions, spec->num_processes());
        return 0;
    }
    if (o.group_size % 2 == 0) {
        std::fprintf(stderr, "wbamctl topology: --group-size must be odd\n");
        return 2;
    }
    const harness::TopologySpec spec = harness::TopologySpec::make_grouped(
        o.groups, o.group_size, o.gen_clients, o.regions, o.local, o.cross,
        static_cast<std::uint16_t>(o.base_port));
    if (o.out.empty()) {
        std::fputs(spec.format().c_str(), stdout);
        return 0;
    }
    if (!spec.save(o.out)) {
        std::fprintf(stderr, "wbamctl topology: cannot write %s\n",
                     o.out.c_str());
        return 1;
    }
    std::printf("wbamctl topology: wrote %s (%d processes, %d regions)\n",
                o.out.c_str(), spec.num_processes(), spec.regions);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: wbamctl {run|sim|topology} [flags] "
                     "(see header comment / docs/DEPLOYMENT.md)\n");
        return 2;
    }
    CtlOptions o;
    if (!parse_flags(argc, argv, 2, o)) return 2;
    if (o.verbose) log::set_level(log::Level::info);
    const std::string cmd = argv[1];
    if (cmd == "run") return cmd_run(o);
    if (cmd == "sim") return cmd_sim(o);
    if (cmd == "topology") return cmd_topology(o);
    std::fprintf(stderr, "wbamctl: unknown subcommand '%s'\n", cmd.c_str());
    return 2;
}
