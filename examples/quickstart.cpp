// Quickstart: a two-group white-box atomic multicast cluster on the
// deterministic simulator. Multicasts three messages (two conflicting,
// one single-group) and prints every delivery with its simulated time,
// demonstrating the totally ordered projections each group receives.
//
//   build/examples/quickstart
#include <cstdio>

#include "harness/cluster.hpp"

int main() {
    using namespace wbam;
    using harness::Cluster;
    using harness::ClusterConfig;

    ClusterConfig cfg;
    cfg.kind = harness::ProtocolKind::wbcast;
    cfg.groups = 2;      // two partitions of an imaginary service
    cfg.group_size = 3;  // each tolerating one crash (f = 1)
    cfg.clients = 2;
    cfg.delta = milliseconds(1);  // one-way message delay

    Cluster cluster(cfg);
    std::printf("Cluster: %d groups x %d replicas, delta = 1ms\n\n",
                cfg.groups, cfg.group_size);

    // Two clients multicast concurrently to both groups — these conflict
    // and must be delivered in the same order everywhere.
    const MsgId a = cluster.multicast_at(0, 0, {0, 1}, Bytes{'a'});
    const MsgId b = cluster.multicast_at(microseconds(50), 1, {0, 1},
                                         Bytes{'b'});
    // A single-group message ordered only within group 1.
    (void)cluster.multicast_at(microseconds(100), 0, {1}, Bytes{'c'});
    cluster.run_for(milliseconds(50));

    auto name = [&](MsgId id) { return id == a ? 'a' : id == b ? 'b' : 'c'; };
    for (ProcessId p = 0; p < cluster.topo().num_replicas(); ++p) {
        const auto it = cluster.log().deliveries().find(p);
        std::printf("replica %d (group %d, %s): ", p,
                    cluster.topo().group_of(p),
                    p == cluster.topo().initial_leader(cluster.topo().group_of(p))
                        ? "leader"
                        : "follower");
        if (it == cluster.log().deliveries().end()) {
            std::printf("(nothing)\n");
            continue;
        }
        for (const auto& ev : it->second)
            std::printf("%c@%.1fms  ", name(ev.msg), to_millis(ev.at));
        std::printf("\n");
    }

    const auto result = cluster.check();
    std::printf("\nSpecification check: %s\n",
                result.ok() ? "OK (Validity, Integrity, Ordering, Termination)"
                            : result.summary().c_str());
    std::printf("Note the 3ms leader / 4ms follower delivery times: the "
                "paper's 3-delta fast path.\n");
    return result.ok() ? 0 : 1;
}
