#!/usr/bin/env bash
# Spins up the paper's 2-group x 3-replica cluster as SEVEN separate OS
# processes (6 wbamd replicas + 1 wbamd client) over loopback TCP, waits
# for the client's workload to complete, and validates that every replica
# delivered the identical totally-ordered sequence (the workload addresses
# every message to both groups, so all six sequences must match).
#
#   scripts/run_loopback_cluster.sh [BUILD_DIR] [PROTO] [MSGS]
#
# Exit 0 on a validated run; non-zero on incomplete workload or divergent
# delivery sequences.
set -euo pipefail

BUILD_DIR=${1:-build}
PROTO=${2:-wbcast}
MSGS=${3:-25}
NGROUPS=2
GROUP_SIZE=3
# Skeen's classic protocol assumes reliable singleton groups.
if [[ "$PROTO" == "skeen" ]]; then GROUP_SIZE=1; fi
REPLICAS=$((NGROUPS * GROUP_SIZE))
RUN_MS=${WBAMD_RUN_MS:-8000}

WBAMD="$BUILD_DIR/wbamd"
if [[ ! -x "$WBAMD" ]]; then
    echo "error: $WBAMD not built (cmake --build $BUILD_DIR --target wbamd)" >&2
    exit 2
fi

# Randomized base port keeps parallel CI jobs and repeated runs from
# colliding on a fixed range; stays below 32768 so it cannot collide with
# the kernel's ephemeral port range either.
BASE_PORT=$((20000 + (RANDOM % 12000)))
DIR=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$DIR"
}
trap cleanup EXIT

echo "== wbamd loopback cluster: $PROTO, ${NGROUPS}x${GROUP_SIZE} replicas," \
     "base port $BASE_PORT, $MSGS msgs =="

for ((p = 0; p < REPLICAS; p++)); do
    "$WBAMD" --pid="$p" --proto="$PROTO" --groups=$NGROUPS \
        --group-size=$GROUP_SIZE --clients=1 --base-port="$BASE_PORT" \
        --run-ms="$RUN_MS" --out="$DIR/replica_$p.txt" &
    PIDS+=($!)
done

# The client exits as soon as every multicast is acknowledged by both
# groups; its exit code is the workload verdict.
CLIENT_STATUS=0
"$WBAMD" --pid=$REPLICAS --proto="$PROTO" --groups=$NGROUPS \
    --group-size=$GROUP_SIZE --clients=1 --base-port="$BASE_PORT" \
    --run-ms="$RUN_MS" --msgs="$MSGS" || CLIENT_STATUS=$?

# Replicas keep serving until their deadline, then dump their sequences.
for pid in "${PIDS[@]}"; do wait "$pid" || true; done
PIDS=()

if [[ $CLIENT_STATUS -ne 0 ]]; then
    echo "FAIL: client workload incomplete (status $CLIENT_STATUS)" >&2
    exit 1
fi

# Every message went to both groups: all six delivery sequences must be
# identical (atomic multicast total order), and complete.
LINES=$(wc -l < "$DIR/replica_0.txt")
if [[ "$LINES" -ne "$MSGS" ]]; then
    echo "FAIL: replica 0 delivered $LINES/$MSGS" >&2
    exit 1
fi
for ((p = 1; p < REPLICAS; p++)); do
    if ! cmp -s "$DIR/replica_0.txt" "$DIR/replica_$p.txt"; then
        echo "FAIL: replica $p's delivery sequence diverges from replica 0" >&2
        diff "$DIR/replica_0.txt" "$DIR/replica_$p.txt" | head -10 >&2 || true
        exit 1
    fi
done

echo "PASS: $REPLICAS replicas delivered the identical $MSGS-message sequence"
