#!/usr/bin/env bash
# Spins up the paper's 2-group x 3-replica cluster as SEVEN separate OS
# processes (6 wbamd replicas + 1 wbamd client) over loopback TCP, waits
# for the client's workload to complete, and validates that every replica
# delivered the identical totally-ordered sequence (the workload addresses
# every message to both groups, so all six sequences must match).
#
#   scripts/run_loopback_cluster.sh [BUILD_DIR] [PROTO] [MSGS] [NET_SHARDS]
#
# NET_SHARDS (default: WBAM_NET_SHARDS or 0 = auto) is passed to every
# wbamd as --net-shards=N: the transport event-loop shard count.
#
# Robustness: ALL child processes (replicas and client) run in the
# background and are killed-and-reaped by an EXIT trap, so no orphan can
# outlive a failure; and because the randomized base port can collide
# with a busy port on a shared CI host (a bind failure aborts that wbamd
# immediately), the whole launch retries on a fresh port range before the
# run is declared failed.
#
# Exit 0 on a validated run; non-zero on incomplete workload or divergent
# delivery sequences.
set -euo pipefail

BUILD_DIR=${1:-build}
PROTO=${2:-wbcast}
MSGS=${3:-25}
NET_SHARDS=${4:-${WBAM_NET_SHARDS:-0}}
NGROUPS=2
GROUP_SIZE=3
# Skeen's classic protocol assumes reliable singleton groups.
if [[ "$PROTO" == "skeen" ]]; then GROUP_SIZE=1; fi
REPLICAS=$((NGROUPS * GROUP_SIZE))
RUN_MS=${WBAMD_RUN_MS:-8000}
ATTEMPTS=${WBAMD_PORT_ATTEMPTS:-4}

WBAMD="$BUILD_DIR/wbamd"
if [[ ! -x "$WBAMD" ]]; then
    echo "error: $WBAMD not built (cmake --build $BUILD_DIR --target wbamd)" >&2
    exit 2
fi

DIR=$(mktemp -d)
PIDS=()
kill_children() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    for pid in "${PIDS[@]:-}"; do wait "$pid" 2>/dev/null || true; done
    PIDS=()
}
cleanup() {
    kill_children
    rm -rf "$DIR"
}
trap cleanup EXIT

launch_attempt() {
    local base_port=$1
    rm -f "$DIR"/replica_*.txt
    for ((p = 0; p < REPLICAS; p++)); do
        "$WBAMD" --pid="$p" --proto="$PROTO" --groups=$NGROUPS \
            --group-size=$GROUP_SIZE --clients=1 --base-port="$base_port" \
            --net-shards="$NET_SHARDS" \
            --run-ms="$RUN_MS" --out="$DIR/replica_$p.txt" \
            >"$DIR/wbamd_$p.log" 2>&1 &
        PIDS+=($!)
    done

    # A bind collision aborts the affected wbamd within milliseconds; give
    # the replicas a beat and check they are all still serving.
    sleep 0.4
    for pid in "${PIDS[@]}"; do
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "-- a replica died at startup (port collision on base" \
                 "$base_port?); retrying on a fresh range" >&2
            kill_children
            return 2
        fi
    done

    # The client exits as soon as every multicast is acknowledged by both
    # groups; its exit code is the workload verdict.
    local client_status=0
    "$WBAMD" --pid=$REPLICAS --proto="$PROTO" --groups=$NGROUPS \
        --group-size=$GROUP_SIZE --clients=1 --base-port="$base_port" \
        --net-shards="$NET_SHARDS" \
        --run-ms="$RUN_MS" --msgs="$MSGS" &
    PIDS+=($!)
    wait "${PIDS[-1]}" || client_status=$?

    # SIGABRT from the bind assertion = the CLIENT hit the collision.
    if [[ $client_status -eq 134 ]]; then
        echo "-- client died at startup (port collision on base" \
             "$base_port?); retrying on a fresh range" >&2
        kill_children
        return 2
    fi

    # Replicas keep serving until their deadline, then dump their sequences.
    for pid in "${PIDS[@]}"; do wait "$pid" || true; done
    PIDS=()

    if [[ $client_status -ne 0 ]]; then
        echo "FAIL: client workload incomplete (status $client_status)" >&2
        return 1
    fi

    # Every message went to both groups: all replica delivery sequences
    # must be identical (atomic multicast total order), and complete.
    local lines
    lines=$(wc -l < "$DIR/replica_0.txt")
    if [[ "$lines" -ne "$MSGS" ]]; then
        echo "FAIL: replica 0 delivered $lines/$MSGS" >&2
        return 1
    fi
    for ((p = 1; p < REPLICAS; p++)); do
        if ! cmp -s "$DIR/replica_0.txt" "$DIR/replica_$p.txt"; then
            echo "FAIL: replica $p's delivery sequence diverges from replica 0" >&2
            diff "$DIR/replica_0.txt" "$DIR/replica_$p.txt" | head -10 >&2 || true
            return 1
        fi
    done
    return 0
}

for ((attempt = 1; attempt <= ATTEMPTS; attempt++)); do
    # Randomized base port keeps parallel CI jobs and repeated runs from
    # colliding on a fixed range; stays below 32768 so it cannot collide
    # with the kernel's ephemeral port range either.
    BASE_PORT=$((20000 + (RANDOM % 12000)))
    echo "== wbamd loopback cluster: $PROTO, ${NGROUPS}x${GROUP_SIZE}" \
         "replicas, base port $BASE_PORT, $MSGS msgs, net-shards" \
         "$NET_SHARDS (attempt $attempt/$ATTEMPTS) =="
    STATUS=0
    launch_attempt "$BASE_PORT" || STATUS=$?
    if [[ $STATUS -eq 0 ]]; then
        echo "PASS: $REPLICAS replicas delivered the identical" \
             "$MSGS-message sequence"
        exit 0
    fi
    if [[ $STATUS -ne 2 ]]; then
        exit "$STATUS"  # genuine workload/validation failure: do not mask
    fi
done
echo "FAIL: could not find a collision-free port range in $ATTEMPTS attempts" >&2
exit 1
