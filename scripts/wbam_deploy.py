#!/usr/bin/env python3
"""wbam_deploy.py — deployment driver for the distributed benchmark plane.

Launches a wbamd cluster plus the wbamctl coordinator in one of three
modes and reports the merged BENCH_fig7/fig8 JSON the coordinator writes
(schema: docs/BENCHMARKS.md; protocol: src/ctrl/messages.hpp):

  netns   Emulated WAN on ONE machine (requires root): one Linux network
          namespace per region, a full mesh of veth point-to-point links,
          and a `tc netem` qdisc on each veth END — so every DIRECTED
          region pair gets its own one-way delay (asymmetric links, the
          case where multicast designs actually differentiate). This is
          how CI reproduces the paper's Fig. 7/8 topology shapes without
          a testbed.

  local   Same process layout over plain loopback (no shaping, no root):
          the quick way to drive the whole control plane end-to-end.

  ssh     Real hosts: takes a topology file whose node addresses name the
          machines, launches wbamd there via ssh (binaries and the
          topology file must already be in place — see docs/DEPLOYMENT.md)
          and runs the coordinator locally.

  cleanup Deletes leftover wbam netns namespaces from aborted runs.

Examples:
  sudo scripts/wbam_deploy.py netns --build=build --groups=2 --group-size=3 \
      --drivers=2 --cross=20ms --sessions=4 --measure-ms=3000 \
      --expect-min-p50-ms=20 --out=BENCH_fig7.json
  scripts/wbam_deploy.py local --build=build --proto=ftskeen
  scripts/wbam_deploy.py ssh --build=/opt/wbam --topology=wan.topo

Everything here is stdlib-only python3.
"""

import argparse
import os
import random
import re
import shutil
import signal
import subprocess
import sys
import threading
import time


def log(msg):
    print(f"[wbam_deploy] {msg}", flush=True)


def fail(msg):
    print(f"[wbam_deploy] ERROR: {msg}", file=sys.stderr, flush=True)
    sys.exit(1)


def run(cmd, check=True, quiet=False, **kwargs):
    if not quiet:
        log("$ " + " ".join(cmd))
    return subprocess.run(cmd, check=check, **kwargs)


def monotonic_epoch_ns():
    """Shared steady-clock epoch for every process on this machine
    (CLOCK_MONOTONIC is what libstdc++'s steady_clock reads on Linux)."""
    return time.clock_gettime_ns(time.CLOCK_MONOTONIC)


def parse_duration_ns(text):
    """Mirror of harness::parse_duration: 150 / 150ns / 40us / 0.1ms / 2s."""
    units = {"ns": 1, "us": 1_000, "ms": 1_000_000, "s": 1_000_000_000}
    for suffix, scale in sorted(units.items(), key=lambda kv: -len(kv[0])):
        if text.endswith(suffix):
            number = text[: -len(suffix)]
            break
    else:
        number, scale = text, 1
    try:
        value = float(number)
    except ValueError:
        fail(f"bad duration '{text}'")
    if value < 0:
        fail(f"bad duration '{text}'")
    return int(value * scale + 0.5)


def format_ms(ns):
    return f"{ns / 1e6:g}ms"


# --- topology -----------------------------------------------------------------


class Layout:
    """Process layout + region/address assignment (mirrors
    harness::TopologySpec::make_grouped: replicas regioned by group,
    drivers and the coordinator round-robin)."""

    def __init__(self, args, node_ip):
        self.groups = args.groups
        self.group_size = args.group_size
        self.drivers = args.drivers
        self.clients = args.drivers + 1  # last client pid = coordinator
        self.replicas = self.groups * self.group_size
        self.processes = self.replicas + self.clients
        wanted = getattr(args, "regions", 0)
        self.regions = min(wanted, self.groups) if wanted else self.groups
        if self.regions < 1:
            fail("--regions must be >= 1")
        self.region_of = []
        for p in range(self.replicas):
            self.region_of.append((p // self.group_size) % self.regions)
        for c in range(self.clients):
            self.region_of.append(c % self.regions)
        self.coordinator = self.replicas + self.clients - 1
        base_port = args.base_port
        self.addr_of = [
            (node_ip(self.region_of[p]), base_port + p)
            for p in range(self.processes)
        ]

    def topology_text(self, local_ns, cross_ns):
        lines = [
            "wbam-topology v1",
            f"groups {self.groups}",
            f"group_size {self.group_size}",
            f"clients {self.clients}",
            "staggered_leaders 0",
            f"regions {self.regions}",
        ]
        for a in range(self.regions):
            for b in range(self.regions):
                owd = local_ns if a == b else cross_ns
                if owd:
                    lines.append(f"owd {a} {b} {owd}ns")
        for p in range(self.processes):
            host, port = self.addr_of[p]
            lines.append(f"node {p} region {self.region_of[p]} addr {host}:{port}")
        return "\n".join(lines) + "\n"


# --- netns plumbing -----------------------------------------------------------


class NetnsMesh:
    """One namespace per region, full mesh of veth /30 links, one netem
    qdisc per veth end (= per DIRECTED region pair), and a /32 node
    address per region routed over the right link."""

    def __init__(self, run_id, regions):
        if regions > 8:
            fail("netns mode supports at most 8 regions (veth name budget)")
        self.run_id = run_id
        self.regions = regions
        self.namespaces = [f"wbamns-{run_id}-{r}" for r in range(regions)]

    def ns_exec(self, region, cmd):
        return ["ip", "netns", "exec", self.namespaces[region]] + cmd

    def node_ip(self, region):
        return f"10.231.{region}.1"

    def veth(self, a, b):
        return f"wb{self.run_id}{a}{b}"  # <= 15 chars for run_id of 4

    def build(self, owd, loss_pct, require_shaping):
        for ns in self.namespaces:
            run(["ip", "netns", "add", ns], quiet=True)
        for r in range(self.regions):
            run(self.ns_exec(r, ["ip", "link", "set", "lo", "up"]), quiet=True)
            run(self.ns_exec(r, ["ip", "addr", "add", f"{self.node_ip(r)}/32",
                                 "dev", "lo"]), quiet=True)
        shaped = True
        link = 0
        for a in range(self.regions):
            for b in range(a + 1, self.regions):
                va, vb = self.veth(a, b), self.veth(b, a)
                subnet = f"10.232.{link}"
                link += 1
                run(["ip", "link", "add", va, "netns", self.namespaces[a],
                     "type", "veth", "peer", "name", vb, "netns",
                     self.namespaces[b]], quiet=True)
                for region, dev, addr, peer_ip, peer_node in (
                    (a, va, f"{subnet}.1/30", f"{subnet}.2", self.node_ip(b)),
                    (b, vb, f"{subnet}.2/30", f"{subnet}.1", self.node_ip(a)),
                ):
                    run(self.ns_exec(region, ["ip", "addr", "add", addr,
                                              "dev", dev]), quiet=True)
                    run(self.ns_exec(region, ["ip", "link", "set", dev, "up"]),
                        quiet=True)
                    run(self.ns_exec(region, ["ip", "route", "add",
                                              f"{peer_node}/32", "via",
                                              peer_ip, "dev", dev]),
                        quiet=True)
                # One netem per DIRECTED pair: the a->b delay shapes va's
                # egress, the b->a delay shapes vb's — asymmetry for free.
                for region, dev, delay_ns in ((a, va, owd(a, b)),
                                              (b, vb, owd(b, a))):
                    netem = ["tc", "qdisc", "add", "dev", dev, "root",
                             "netem", "delay", format_ms(delay_ns)]
                    if loss_pct:
                        netem += ["loss", f"{loss_pct}%"]
                    r = run(self.ns_exec(region, netem), check=False,
                            quiet=True, capture_output=True)
                    if r.returncode != 0:
                        shaped = False
        if not shaped:
            if require_shaping:
                self.destroy()
                fail("tc netem unavailable (sch_netem kernel module?) and "
                     "--require-shaping was given")
            log("WARNING: tc netem unavailable — links are UNSHAPED "
                "(orchestration still exercised; latencies are loopback)")
        return shaped

    def destroy(self):
        for ns in self.namespaces:
            run(["ip", "netns", "del", ns], check=False, quiet=True,
                capture_output=True)


# --- run orchestration --------------------------------------------------------


def wait_all(procs, names, timeout_s):
    deadline = time.monotonic() + timeout_s
    status = {}
    for proc, name in zip(procs, names):
        remaining = max(0.5, deadline - time.monotonic())
        try:
            status[name] = proc.wait(timeout=remaining)
        except subprocess.TimeoutExpired:
            proc.kill()
            status[name] = "timeout"
    return status


def check_sequences(outdir, layout):
    """Replicas of one group must have written identical sequences."""
    for g in range(layout.groups):
        members = list(range(g * layout.group_size, (g + 1) * layout.group_size))
        first = None
        for p in members:
            path = os.path.join(outdir, f"replica_{p}.txt")
            if not os.path.exists(path):
                fail(f"replica {p} wrote no sequence file")
            with open(path, "rb") as f:
                content = f.read()
            if first is None:
                first_pid, first = p, content
            elif content != first:
                fail(f"delivery sequence of replica {p} diverges from "
                     f"replica {first_pid} (group {g})")
        if not first:
            fail(f"group {g} delivered nothing")
        log(f"group {g}: {len(first.splitlines())} deliveries, "
            f"identical on {len(members)} replicas")


def check_json(path, args):
    import json
    with open(path) as f:
        report = json.load(f)
    point = report["series"][0]["points"][0]
    log(f"merged result: {point['clients']} sessions, "
        f"{point['throughput_ops_s']:.0f} ops/s, p50 {point['p50_ms']:.2f} ms, "
        f"p99 {point['p99_ms']:.2f} ms, {point['ops']} ops from "
        f"{report['distributed']['driver_processes']} driver processes")
    if report["distributed"]["driver_processes"] < 2:
        fail("expected >= 2 driver processes in the merged report")
    if args.expect_min_p50_ms is not None:
        if point["p50_ms"] < args.expect_min_p50_ms:
            fail(f"p50 {point['p50_ms']:.2f} ms < expected minimum "
                 f"{args.expect_min_p50_ms} ms — netem delay not visible "
                 f"in the merged percentiles")
        log(f"latency floor OK: p50 {point['p50_ms']:.2f} ms >= "
            f"{args.expect_min_p50_ms} ms (injected one-way delay)")


def launch_cluster(args, layout, topo_path, exec_in_region, outdir):
    """Starts every wbamd (replicas + drivers), then the coordinator;
    returns (coordinator status, wbamd statuses). With --crash-pid set, a
    helper thread SIGKILLs that replica mid-run and relaunches the exact
    same command after --restart-after-ms — the rejoining process replays
    its WAL and catches up, and the coordinator's per-group digest check
    (plus check_sequences) then covers the full run including the outage."""
    epoch = monotonic_epoch_ns()
    wbamd = os.path.join(args.build, "wbamd")
    wbamctl = os.path.join(args.build, "wbamctl")
    run_ms = args.warmup_ms + args.measure_ms + args.deadline_slack_ms
    crash_pid = getattr(args, "crash_pid", None)
    wal_dir = getattr(args, "wal_dir", None)
    if crash_pid is not None:
        if not 0 <= crash_pid < layout.replicas:
            fail("--crash-pid must name a replica pid")
        if wal_dir is None:
            # A kill -9'd replica can only rejoin with its pre-crash
            # digest if it was writing a WAL.
            wal_dir = os.path.join(outdir, "wal")
    if wal_dir:
        os.makedirs(wal_dir, exist_ok=True)
    metrics_dir = getattr(args, "metrics_dir", None)
    if metrics_dir:
        os.makedirs(metrics_dir, exist_ok=True)
    procs, names, cmds = [], [], []
    for p in range(layout.processes):
        if p == layout.coordinator:
            continue
        cmd = [wbamd, f"--pid={p}", "--bench", f"--topology={topo_path}",
               f"--epoch-ns={epoch}", f"--run-ms={run_ms}",
               f"--net-shards={args.net_shards}"]
        if getattr(args, "verbose", False):
            cmd.append("-v")
        if metrics_dir:
            cmd += [f"--metrics-dump="
                    f"{os.path.join(metrics_dir, f'metrics_p{p}.jsonl')}",
                    f"--metrics-interval-ms={args.metrics_interval_ms}"]
        if p < layout.replicas:
            cmd.append(f"--out={os.path.join(outdir, f'replica_{p}.txt')}")
            if wal_dir:
                cmd += [f"--wal-dir={wal_dir}",
                        f"--wal-sync={getattr(args, 'wal_sync', 'group')}"]
        full = exec_in_region(layout.region_of[p], cmd)
        procs.append(subprocess.Popen(
            full, stdout=open(os.path.join(outdir, f"wbamd_{p}.log"), "w"),
            stderr=subprocess.STDOUT))
        names.append(f"wbamd_{p}")
        cmds.append(full)
    log(f"launched {len(procs)} wbamd processes "
        f"({layout.replicas} replicas + {layout.drivers} drivers)")

    ctl = [wbamctl, "run", f"--topology={topo_path}", f"--epoch-ns={epoch}",
           f"--proto={args.proto}", f"--dest-groups={args.dest_groups}",
           f"--sessions={args.sessions}", f"--payload={args.payload}",
           f"--warmup-ms={args.warmup_ms}", f"--measure-ms={args.measure_ms}",
           f"--deadline-ms={run_ms}", f"--fig={args.fig}",
           f"--net-shards={args.net_shards}", f"--out={args.out}"]
    if args.batching:
        ctl.append("--batching")
    if metrics_dir:
        ctl.append(f"--metrics-dump="
                   f"{os.path.join(metrics_dir, 'metrics_merged.json')}")
    if getattr(args, "workload", "bytes") == "kv":
        ctl += [f"--workload=kv", f"--kv-keys={args.kv_keys}",
                f"--kv-theta={args.kv_theta}",
                f"--kv-read-pct={args.kv_read_pct}",
                f"--kv-cross-pct={args.kv_cross_pct}"]
    injector = None
    try:
        coord = subprocess.Popen(exec_in_region(
            layout.region_of[layout.coordinator], ctl))
        if crash_pid is not None:
            idx = names.index(f"wbamd_{crash_pid}")

            def inject():
                time.sleep(args.crash_after_ms / 1000)
                # `ip netns exec` execs wbamd in-process, so the Popen pid
                # IS the daemon in both deployment modes: SIGKILL lands on
                # wbamd itself, no shutdown path runs.
                procs[idx].kill()
                procs[idx].wait()
                log(f"killed wbamd_{crash_pid} (SIGKILL) "
                    f"{args.crash_after_ms} ms into the run")
                time.sleep(args.restart_after_ms / 1000)
                procs[idx] = subprocess.Popen(
                    cmds[idx],
                    stdout=open(os.path.join(
                        outdir, f"wbamd_{crash_pid}_restarted.log"), "w"),
                    stderr=subprocess.STDOUT)
                log(f"restarted wbamd_{crash_pid} — replaying its WAL")

            injector = threading.Thread(target=inject, daemon=True)
            injector.start()
        coord_status = coord.wait(timeout=run_ms / 1000 + 60)
        if injector is not None:
            injector.join(timeout=30)
        statuses = wait_all(procs, names, timeout_s=run_ms / 1000 + 30)
        return coord_status, statuses
    except BaseException:
        for proc in procs:
            proc.kill()
        raise


def check_wal_recovery(outdir, crash_pid):
    """The restarted wbamd prints its WAL recovery stats at boot; a crash
    injected mid-run must leave durable state behind, so zero recovered
    records means the WAL wiring (or the crash timing) is broken."""
    path = os.path.join(outdir, f"wbamd_{crash_pid}_restarted.log")
    if not os.path.exists(path):
        fail(f"wbamd_{crash_pid} was never restarted (no {path})")
    with open(path) as f:
        text = f.read()
    m = re.search(r"(\d+) records recovered", text)
    if m is None:
        fail(f"restarted wbamd_{crash_pid} printed no WAL recovery line")
    if int(m.group(1)) == 0:
        fail(f"restarted wbamd_{crash_pid} recovered 0 WAL records — the "
             f"crash predated any durable state; raise --crash-after-ms")
    log(f"replica p{crash_pid} recovered {m.group(1)} WAL records on "
        f"restart and rejoined with a matching digest")


def finish_run(args, layout, coord_status, statuses, outdir):
    bad = {n: s for n, s in statuses.items() if s != 0}
    if coord_status != 0:
        fail(f"coordinator exited {coord_status} (wbamd statuses: {bad})")
    if bad:
        fail(f"wbamd processes failed: {bad}")
    check_sequences(outdir, layout)
    check_json(args.out, args)
    if getattr(args, "crash_pid", None) is not None:
        check_wal_recovery(outdir, args.crash_pid)
    log(f"PASS — merged report in {args.out}")


def cmd_netns(args):
    if os.geteuid() != 0:
        fail("netns mode needs root (sudo) for ip netns / tc")
    if not shutil.which("ip") or not shutil.which("tc"):
        fail("netns mode needs the iproute2 tools (ip, tc)")
    run_id = f"{random.randrange(16**4):04x}"
    local_ns = parse_duration_ns(args.local)
    cross_ns = parse_duration_ns(args.cross)
    outdir = args.workdir or f"/tmp/wbam-deploy-{run_id}"
    os.makedirs(outdir, exist_ok=True)

    layout = Layout(args, node_ip=lambda r: f"10.231.{r}.1")
    mesh = NetnsMesh(run_id, layout.regions)
    log(f"namespaces: {layout.regions} regions, cross-region one-way "
        f"{args.cross}, {layout.replicas} replicas + {layout.drivers} "
        f"drivers + coordinator")
    try:
        mesh.build(owd=lambda a, b: cross_ns, loss_pct=args.loss,
                   require_shaping=args.require_shaping)
        topo_path = os.path.join(outdir, "cluster.topo")
        with open(topo_path, "w") as f:
            # --local is recorded in the topology file so its sim twin
            # (`wbamctl sim --topology=cluster.topo`) models the declared
            # intra-region delay; the emulated cluster's intra-region
            # traffic itself rides the namespace's loopback (real
            # ~0.05 ms, the paper's LAN figure — netem shapes only the
            # cross-region veths).
            f.write(layout.topology_text(local_ns=local_ns, cross_ns=cross_ns))
        coord_status, statuses = launch_cluster(
            args, layout, topo_path, mesh.ns_exec, outdir)
        finish_run(args, layout, coord_status, statuses, outdir)
    finally:
        if args.keep:
            log(f"--keep: namespaces and {outdir} left in place")
        else:
            mesh.destroy()


def cmd_local(args):
    run_id = f"{random.randrange(16**4):04x}"
    outdir = args.workdir or f"/tmp/wbam-deploy-{run_id}"
    os.makedirs(outdir, exist_ok=True)
    # Random sub-32768 base port; a collision surfaces as an early wbamd
    # death and we retry with a fresh range (same policy as
    # scripts/run_loopback_cluster.sh).
    for attempt in range(3):
        args.base_port = 20000 + random.randrange(12000)
        layout = Layout(args, node_ip=lambda r: "127.0.0.1")
        topo_path = os.path.join(outdir, "cluster.topo")
        with open(topo_path, "w") as f:
            f.write(layout.topology_text(local_ns=0, cross_ns=0))
        try:
            coord_status, statuses = launch_cluster(
                args, layout, topo_path, lambda r, cmd: cmd, outdir)
        except subprocess.TimeoutExpired:
            fail("coordinator timed out")
        if coord_status != 0 and attempt + 1 < 3 and any(
                s != 0 for s in statuses.values()):
            log(f"retrying with a fresh port range (attempt {attempt + 2}) "
                f"— possible port collision on base {args.base_port}")
            continue
        finish_run(args, layout, coord_status, statuses, outdir)
        return


def cmd_ssh(args):
    if not args.topology:
        fail("ssh mode needs --topology=FILE with real host addresses")
    # The topology file is authoritative: shape and addresses come from it.
    spec = {}
    hosts = []
    with open(args.topology) as f:
        for line in f:
            tok = line.split("#", 1)[0].split()
            if not tok:
                continue
            if tok[0] in ("groups", "group_size", "clients"):
                spec[tok[0]] = int(tok[1])
            elif tok[0] == "node":
                hosts.append(tok[5].rsplit(":", 1)[0])
    replicas = spec["groups"] * spec["group_size"]
    processes = replicas + spec["clients"]
    if len(hosts) != processes:
        fail(f"topology file names {len(hosts)} nodes for {processes} pids")
    coordinator = processes - 1
    # Distinct machines cannot share a steady-clock epoch: no --epoch-ns,
    # so START falls back to relative measurement windows.
    run_ms = args.warmup_ms + args.measure_ms + args.deadline_slack_ms
    procs, names = [], []
    remote_topo = args.remote_topology or args.topology
    wbamd = os.path.join(args.build, "wbamd")
    for p in range(processes):
        if p == coordinator:
            continue
        cmd = [wbamd, f"--pid={p}", "--bench", f"--topology={remote_topo}",
               f"--run-ms={run_ms}", f"--net-shards={args.net_shards}"]
        if args.metrics_dir:
            # The directory is on the REMOTE host and must already exist
            # (same contract as the binaries and the topology file).
            cmd += [f"--metrics-dump="
                    f"{args.metrics_dir}/metrics_p{p}.jsonl",
                    f"--metrics-interval-ms={args.metrics_interval_ms}"]
        procs.append(subprocess.Popen(["ssh", "-o", "BatchMode=yes",
                                       hosts[p]] + cmd))
        names.append(f"ssh_{hosts[p]}_p{p}")
    log(f"launched {len(procs)} remote wbamd processes over ssh")
    ctl = [os.path.join(args.build, "wbamctl"), "run",
           f"--topology={args.topology}", f"--proto={args.proto}",
           f"--dest-groups={args.dest_groups}", f"--sessions={args.sessions}",
           f"--payload={args.payload}", f"--warmup-ms={args.warmup_ms}",
           f"--measure-ms={args.measure_ms}", f"--deadline-ms={run_ms}",
           f"--fig={args.fig}", f"--net-shards={args.net_shards}",
           f"--out={args.out}"]
    if args.metrics_dir:
        os.makedirs(args.metrics_dir, exist_ok=True)  # wbamctl runs locally
        ctl.append(f"--metrics-dump="
                   f"{args.metrics_dir}/metrics_merged.json")
    try:
        coord_status = subprocess.Popen(ctl).wait(timeout=run_ms / 1000 + 120)
    except BaseException:
        # Unreachable host, timeout, ^C: reap the ssh children instead of
        # orphaning them (the remote wbamd still stops at its own
        # --run-ms deadline).
        for proc in procs:
            proc.kill()
        raise
    statuses = wait_all(procs, names, timeout_s=run_ms / 1000 + 60)
    bad = {n: s for n, s in statuses.items() if s != 0}
    if coord_status != 0 or bad:
        fail(f"distributed run failed (coordinator {coord_status}, {bad})")
    check_json(args.out, args)
    log(f"PASS — merged report in {args.out}")


def cmd_cleanup(_args):
    out = subprocess.run(["ip", "netns", "list"], capture_output=True,
                         text=True, check=False).stdout
    for line in out.splitlines():
        name = line.split()[0] if line.split() else ""
        if name.startswith("wbamns-"):
            run(["ip", "netns", "del", name], check=False)
    log("cleanup done")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="mode", required=True)
    modes = {}
    for mode in ("netns", "local", "ssh", "cleanup"):
        modes[mode] = sub.add_parser(mode)
    for mode in ("netns", "local", "ssh"):
        m = modes[mode]
        m.add_argument("--build", default="build",
                       help="directory with wbamd/wbamctl binaries")
        m.add_argument("--proto", default="wbcast")
        m.add_argument("--groups", type=int, default=2)
        m.add_argument("--group-size", type=int, default=3)
        m.add_argument("--drivers", type=int, default=2)
        m.add_argument("--sessions", type=int, default=4)
        m.add_argument("--dest-groups", type=int, default=2)
        m.add_argument("--payload", type=int, default=20)
        m.add_argument("--warmup-ms", type=int, default=500)
        m.add_argument("--measure-ms", type=int, default=3000)
        m.add_argument("--deadline-slack-ms", type=int, default=30000)
        m.add_argument("--batching", action="store_true")
        m.add_argument("--net-shards", type=int, default=0,
                       help="transport event-loop shards per process "
                            "(0 = auto: hardware concurrency)")
        m.add_argument("--workload", default="bytes",
                       choices=("bytes", "kv"),
                       help="bytes = opaque-payload microbenchmark; kv = "
                            "zipfian partitioned-store scale-out workload")
        m.add_argument("--kv-keys", type=int, default=1000)
        m.add_argument("--kv-theta", type=float, default=0.99)
        m.add_argument("--kv-read-pct", type=int, default=50)
        m.add_argument("--kv-cross-pct", type=int, default=10)
        m.add_argument("--fig", type=int, default=7)
        m.add_argument("--out", default="BENCH_fig7.json")
        m.add_argument("--expect-min-p50-ms", type=float, default=None,
                       help="fail unless the merged p50 is at least this "
                            "(CI: the injected one-way delay)")
        m.add_argument("--workdir", default=None)
        m.add_argument("--metrics-dir", default=None,
                       help="white-box telemetry: every wbamd writes "
                            "<dir>/metrics_p<pid>.jsonl (delta lines + final "
                            "snapshot) and wbamctl writes "
                            "<dir>/metrics_merged.json (ssh: the directory "
                            "must already exist on the remote hosts)")
        m.add_argument("--metrics-interval-ms", type=int, default=1000,
                       help="cadence of the per-process delta lines")
        m.add_argument("--base-port", type=int, default=7100)
        m.add_argument("--topology", default=None)
        m.add_argument("--verbose", action="store_true",
                       help="run wbamd/wbamctl with -v (logs in the workdir)")
    for mode in ("netns", "local"):
        m = modes[mode]
        m.add_argument("--wal-dir", default=None,
                       help="directory for per-replica WALs (default: only "
                            "created when --crash-pid needs one)")
        m.add_argument("--wal-sync", default="group",
                       choices=("off", "group", "always"))
        m.add_argument("--crash-pid", type=int, default=None,
                       help="replica pid to kill -9 mid-run and restart "
                            "(crash-recovery smoke)")
        m.add_argument("--crash-after-ms", type=int, default=1500,
                       help="when to SIGKILL --crash-pid, from launch")
        m.add_argument("--restart-after-ms", type=int, default=1500,
                       help="downtime between the SIGKILL and the relaunch")
    modes["netns"].add_argument("--regions", type=int, default=0,
                                help="default: one region per group")
    modes["netns"].add_argument("--cross", default="20ms",
                                help="one-way cross-region delay")
    modes["netns"].add_argument("--local", default="0",
                                help="intra-region delay recorded in the "
                                     "topology file for the sim twin; the "
                                     "emulated traffic itself rides "
                                     "unshaped loopback")
    modes["netns"].add_argument("--loss", type=float, default=0.0)
    modes["netns"].add_argument("--require-shaping", action="store_true")
    modes["netns"].add_argument("--keep", action="store_true")
    modes["ssh"].add_argument("--remote-topology", default=None,
                              help="path of the topology file on the "
                                   "remote hosts (default: same as local)")
    args = parser.parse_args()

    if args.mode == "netns":
        cmd_netns(args)
    elif args.mode == "local":
        cmd_local(args)
    elif args.mode == "ssh":
        cmd_ssh(args)
    else:
        cmd_cleanup(args)


if __name__ == "__main__":
    signal.signal(signal.SIGINT, lambda *_: sys.exit(130))
    main()
