#!/usr/bin/env python3
"""check_metrics.py — CI gate for the white-box telemetry pipeline.

Validates the observability outputs of one distributed benchmark run
(docs/OBSERVABILITY.md):

  1. The fig JSON's `stages` section exists, carries every protocol stage
     (leader_receipt, ts_agreed, gts_known, delivered) plus the synthetic
     e2e row, all with non-zero sample counts, and the cumulative medians
     are monotone in stage order.
  2. Telescoping: the per-stage segment_ms values sum to the delivered
     median exactly (they are consecutive-median differences by
     construction), and the delivered median accounts for the end-to-end
     p50 within tolerance — e2e may exceed it by at most the
     deliver -> client-ack return hop (--max-return-hop-ms, which on an
     emulated WAN includes one cross-region one-way delay), and may fall
     below it only by bucket quantization (--rel-tol).
  3. Every per-process --metrics-dump file is well-formed JSONL (each
     line a {kind, pid, metrics} object) ending in a full "final"
     snapshot, and at least one replica's final snapshot has non-zero
     stage histogram samples.
  4. The coordinator's cluster-merged dump parses and its stage
     histograms carry the merged sample counts.

Usage:
  scripts/check_metrics.py --fig=BENCH_fig7.json --proto=wbcast \
      --metrics-dir=DIR [--max-return-hop-ms=45] [--rel-tol=0.15]

Exit 0 on pass; exit 1 with a diagnostic on the first violated check.
Stdlib-only python3.
"""

import argparse
import glob
import json
import os
import sys

PROTO_STAGES = ["leader_receipt", "ts_agreed", "gts_known", "delivered"]


def fail(msg):
    print(f"[check_metrics] FAIL: {msg}", file=sys.stderr, flush=True)
    sys.exit(1)


def ok(msg):
    print(f"[check_metrics] {msg}", flush=True)


def check_stages(report, args):
    stages = report.get("stages")
    if not stages:
        fail(f"{args.fig} has no 'stages' section — stage tracing never "
             f"reached the coordinator")
    by_name = {s["name"]: s for s in stages}
    missing = [n for n in PROTO_STAGES + ["e2e"] if n not in by_name]
    if missing:
        fail(f"stage rows missing from {args.fig}: {missing}")
    for s in stages:
        if s["count"] <= 0:
            fail(f"stage '{s['name']}' has zero samples")
        if s["p50_ms"] <= 0:
            fail(f"stage '{s['name']}' has a zero median")
    # Cumulative-from-submit medians must be monotone in stage order
    # (tiny bucket-rounding inversions excluded by construction: later
    # stages dominate earlier ones sample-by-sample).
    prev = 0.0
    for name in PROTO_STAGES:
        p50 = by_name[name]["p50_ms"]
        if p50 + 1e-9 < prev:
            fail(f"stage medians not monotone: {name} p50 {p50:.3f} ms < "
                 f"previous stage {prev:.3f} ms")
        prev = p50

    # Telescoping: segments are consecutive-median differences, so they
    # sum back to the delivered median exactly (float round-off only).
    seg_sum = sum(by_name[n]["segment_ms"] for n in PROTO_STAGES)
    delivered = by_name["delivered"]["p50_ms"]
    if abs(seg_sum - delivered) > 0.01:
        fail(f"stage segments sum to {seg_sum:.3f} ms, delivered median is "
             f"{delivered:.3f} ms — the breakdown does not telescope")

    # The white-box accounting gate: the delivered median explains the
    # end-to-end p50 up to the return hop and bucket quantization.
    e2e = by_name["e2e"]["p50_ms"]
    if delivered > e2e * (1.0 + args.rel_tol):
        fail(f"delivered median {delivered:.3f} ms exceeds e2e p50 "
             f"{e2e:.3f} ms beyond the {args.rel_tol:.0%} bucket tolerance")
    gap = e2e - delivered
    if gap > args.max_return_hop_ms:
        fail(f"e2e p50 {e2e:.3f} ms is {gap:.3f} ms above the delivered "
             f"median — more than the {args.max_return_hop_ms} ms return-hop "
             f"budget; stage tracing is not accounting for the latency")
    ok(f"stage breakdown OK: " +
       " -> ".join(f"{n} {by_name[n]['p50_ms']:.2f}" for n in PROTO_STAGES) +
       f" -> e2e {e2e:.2f} ms (return hop {gap:.2f} ms)")

    metrics = report.get("metrics")
    if not metrics:
        fail(f"{args.fig} has no 'metrics' section")
    if not any(k.startswith("net/") for k in metrics):
        fail("merged metrics carry no transport counters")
    ok(f"merged metrics OK: {len(metrics)} cluster-summed counters")


def stage_samples(snapshot, proto):
    hists = snapshot.get("histograms", {})
    return sum(h.get("count", 0) for name, h in hists.items()
               if name.startswith(f"stage/{proto}/"))


def check_process_dumps(args):
    paths = sorted(glob.glob(os.path.join(args.metrics_dir, "metrics_p*.jsonl")))
    if not paths:
        fail(f"no metrics_p*.jsonl dumps under {args.metrics_dir}")
    replicas_with_samples = 0
    for path in paths:
        final = None
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as e:
                    fail(f"{path}:{lineno}: not valid JSON ({e})")
                for key in ("kind", "pid", "metrics"):
                    if key not in rec:
                        fail(f"{path}:{lineno}: record lacks '{key}'")
                if rec["kind"] == "final":
                    final = rec
        if final is None:
            fail(f"{path} has no final snapshot line — the daemon never "
                 f"reached its exit dump")
        if stage_samples(final["metrics"], args.proto) > 0:
            replicas_with_samples += 1
    if replicas_with_samples == 0:
        fail(f"no process dump carries stage/{args.proto}/* samples")
    ok(f"process dumps OK: {len(paths)} JSONL files, "
       f"{replicas_with_samples} with {args.proto} stage samples")


def check_merged_dump(args):
    path = os.path.join(args.metrics_dir, "metrics_merged.json")
    if not os.path.exists(path):
        fail(f"{path} missing — wbamctl never wrote the cluster merge")
    with open(path) as f:
        merged = json.load(f)
    samples = stage_samples(merged, args.proto)
    if samples <= 0:
        fail(f"cluster-merged dump has no stage/{args.proto}/* samples")
    ok(f"cluster merge OK: {samples} stage samples across the cluster")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fig", required=True,
                        help="merged fig JSON written by wbamctl run")
    parser.add_argument("--proto", required=True,
                        help="protocol row to validate (wbcast, ftskeen, ...)")
    parser.add_argument("--metrics-dir", default=None,
                        help="--metrics-dir of the deploy run; skips the "
                             "dump-file checks when omitted")
    parser.add_argument("--max-return-hop-ms", type=float, default=45.0,
                        help="budget for e2e p50 minus the delivered median "
                             "(the deliver -> client-ack hop; on an emulated "
                             "WAN at least one cross-region one-way delay)")
    parser.add_argument("--rel-tol", type=float, default=0.15,
                        help="relative tolerance for bucket quantization")
    args = parser.parse_args()

    with open(args.fig) as f:
        report = json.load(f)
    check_stages(report, args)
    if args.metrics_dir:
        check_process_dumps(args)
        check_merged_dump(args)
    print(f"[check_metrics] PASS — {args.fig} ({args.proto})")


if __name__ == "__main__":
    main()
