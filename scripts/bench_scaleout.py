#!/usr/bin/env python3
"""Scale-out benchmark of the partitioned KV store: throughput and
latency percentiles vs. number of groups (= shards) at a fixed
replicas-per-group, white-box atomic multicast against the black-box
baselines, all driven through the distributed bench plane
(wbam_deploy.py -> wbamd --bench + wbamctl run --workload=kv).

Each (protocol, group-count) cell is one full deployment: real OS
processes over TCP (local mode) or netem-shaped namespaces (netns mode),
zipfian KV ops whose destinations come from key placement — single-shard
gets/adds to one group, cross-shard transfers to exactly the two owning
groups. Every cell's run is validated by the coordinator (per-group
delivery digests AND application state hashes must agree) before its
point enters the report; a failed cell fails the sweep.

The merged BENCH_scaleout.json (schema: docs/BENCHMARKS.md):

  {"bench": "scaleout", "group_size": G, "workload": {...},
   "series": [{"protocol": "WbCast",
               "points": [{"groups": 1, "throughput_ops_s": ...,
                           "mean_ms": ..., "p50_ms": ..., "p99_ms": ...,
                           "ops": ..., "clients": ...}, ...]}, ...]}

Usage:
  scripts/bench_scaleout.py --build build --mode local \
      --groups 1,2,3 --protos wbcast,ftskeen --out BENCH_scaleout.json
"""
import argparse
import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
DEPLOY = os.path.join(HERE, "wbam_deploy.py")


def log(msg):
    print(f"[bench_scaleout] {msg}", flush=True)


def fail(msg):
    log(f"FAIL: {msg}")
    sys.exit(1)


def run_cell(args, proto, groups, outdir):
    """One deployment; returns the per-run fig JSON it produced."""
    cell_out = os.path.join(outdir, f"scaleout_{proto}_{groups}g.json")
    cmd = [sys.executable, DEPLOY, args.mode,
           f"--build={args.build}", f"--proto={proto}",
           f"--groups={groups}", f"--group-size={args.group_size}",
           f"--drivers={args.drivers}", f"--sessions={args.sessions}",
           f"--warmup-ms={args.warmup_ms}", f"--measure-ms={args.measure_ms}",
           f"--deadline-slack-ms={args.deadline_slack_ms}",
           "--workload=kv", f"--kv-keys={args.kv_keys}",
           f"--kv-theta={args.kv_theta}", f"--kv-read-pct={args.kv_read_pct}",
           f"--kv-cross-pct={args.kv_cross_pct}",
           f"--out={cell_out}",
           f"--workdir={os.path.join(outdir, f'run_{proto}_{groups}g')}"]
    if args.mode == "netns":
        cmd += [f"--cross={args.cross}", f"--regions={args.regions}"]
    log(f"cell {proto} x {groups} groups: {' '.join(cmd)}")
    status = subprocess.call(cmd)
    if status != 0:
        fail(f"deployment failed for {proto} with {groups} groups "
             f"(exit {status}) — see {outdir}")
    with open(cell_out) as f:
        return json.load(f)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", default="build")
    parser.add_argument("--mode", default="local", choices=("local", "netns"))
    parser.add_argument("--groups", default="1,2,3",
                        help="comma-separated group counts (shards)")
    parser.add_argument("--protos", default="wbcast,ftskeen",
                        help="comma-separated protocols; wbcast plus at "
                             "least one black-box baseline")
    parser.add_argument("--group-size", type=int, default=3)
    parser.add_argument("--drivers", type=int, default=2)
    parser.add_argument("--sessions", type=int, default=4)
    parser.add_argument("--warmup-ms", type=int, default=500)
    parser.add_argument("--measure-ms", type=int, default=3000)
    parser.add_argument("--deadline-slack-ms", type=int, default=30000)
    parser.add_argument("--kv-keys", type=int, default=1000)
    parser.add_argument("--kv-theta", type=float, default=0.99)
    parser.add_argument("--kv-read-pct", type=int, default=50)
    parser.add_argument("--kv-cross-pct", type=int, default=10)
    parser.add_argument("--cross", default="20ms",
                        help="netns mode: cross-region one-way delay")
    parser.add_argument("--regions", type=int, default=0,
                        help="netns mode: region count (0 = one per group)")
    parser.add_argument("--out", default="BENCH_scaleout.json")
    parser.add_argument("--workdir", default=None)
    args = parser.parse_args()

    group_counts = [int(g) for g in args.groups.split(",") if g]
    protos = [p for p in args.protos.split(",") if p]
    if not group_counts or not protos:
        fail("need at least one group count and one protocol")

    outdir = args.workdir or tempfile.mkdtemp(prefix="wbam-scaleout-")
    os.makedirs(outdir, exist_ok=True)

    report = {
        "bench": "scaleout",
        "name": (f"KV scale-out, {args.group_size} replicas/group, "
                 f"zipf {args.kv_theta}, {args.kv_read_pct}% reads, "
                 f"{args.kv_cross_pct}% cross-shard transfers"),
        "runtime": "net-distributed",
        "group_size": args.group_size,
        "workload": {"kind": "kv", "keys": args.kv_keys,
                     "theta": args.kv_theta,
                     "read_pct": args.kv_read_pct,
                     "cross_pct": args.kv_cross_pct},
        "series": [],
    }
    for proto in protos:
        points = []
        for groups in group_counts:
            cell = run_cell(args, proto, groups, outdir)
            pt = dict(cell["series"][0]["points"][0])
            pt["groups"] = groups
            points.append({k: pt[k] for k in
                           ("groups", "throughput_ops_s", "mean_ms",
                            "p50_ms", "p99_ms", "ops", "clients")})
            # Every cell ran under full validation: the coordinator only
            # exits 0 when all replicas of every shard agreed on both the
            # delivery digest and the applied-state hash.
        report["series"].append(
            {"protocol": cell["series"][0]["protocol"], "points": points})

    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    log(f"wrote {args.out}")
    log("throughput (ops/s) vs groups:")
    header = "  groups  " + "  ".join(f"{s['protocol']:>10}"
                                      for s in report["series"])
    log(header)
    for i, groups in enumerate(group_counts):
        row = f"  {groups:>6}  " + "  ".join(
            f"{s['points'][i]['throughput_ops_s']:>10.0f}"
            for s in report["series"])
        log(row)


if __name__ == "__main__":
    main()
