#!/usr/bin/env python3
"""Docs link check: fail on dead relative links in the repo's Markdown.

Scans every tracked *.md file (skipping .git/ and build trees) for inline
Markdown links and validates that relative targets exist on disk. External
schemes (http/https/mailto) and pure in-page anchors are ignored; a
`path#anchor` link is checked for the path part only.

Usage: python3 scripts/check_doc_links.py [repo-root]
Exit status: 0 when all links resolve, 1 otherwise (listing each dead
link), so CI can gate on it. Stdlib only.
"""
import os
import re
import sys

# Inline links/images: [text](target) — target up to the first ')' or
# whitespace (titles like [t](url "title") keep only the url part).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)\s>]+)>?[^)]*\)")
SKIP_DIRS = {".git", "build", "Testing", "node_modules"}
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def strip_code(text):
    """Blank out fenced code blocks and inline code spans (C++ lambdas like
    [this](const T& x) would otherwise read as Markdown links), preserving
    newlines so reported line numbers stay correct."""
    out = []
    in_fence = False
    for line in text.split("\n"):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            out.append("")
            continue
        if in_fence:
            out.append("")
        else:
            out.append(re.sub(r"`[^`]*`", "", line))
    return "\n".join(out)


def dead_links(md_path, root):
    with open(md_path, encoding="utf-8") as f:
        text = strip_code(f.read())
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        base = root if path.startswith("/") else os.path.dirname(md_path)
        resolved = os.path.normpath(os.path.join(base, path.lstrip("/")))
        if not os.path.exists(resolved):
            line = text.count("\n", 0, match.start()) + 1
            yield "%s:%d: dead link -> %s" % (
                os.path.relpath(md_path, root), line, target)


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    failures = []
    checked = 0
    for md in markdown_files(root):
        checked += 1
        failures.extend(dead_links(md, root))
    for failure in failures:
        print(failure)
    print("checked %d markdown file(s): %s" %
          (checked, "%d dead link(s)" % len(failures) if failures else "OK"))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
